"""Runtime concurrency sanitizers: verify dynamically what reprolint
claims statically.

The RL2xx rules reason about call graphs; these three monitors check
the same contracts against what actually executes, so a rule gap (an
edge the static model cannot see) still gets caught in CI:

* :class:`FsyncProtocolSanitizer` interposes ``os.fsync`` /
  ``os.replace`` / ``os.rename`` and asserts the atomic-write dance:
  any ``<name>.<pid>.tmp`` file promoted onto its final name must
  have been fsynced first (advisory targets like the watch cursor are
  exempt, mirroring ``atomic_write_*(durable=False)``).
* :class:`LockOrderSanitizer` interposes ``threading.Lock`` /
  ``threading.RLock`` creation for locks born in monitored code,
  records the acquisition-order graph by creation site (the lockdep
  model: one node per ``file:line``), and flags any cycle — two locks
  ever taken in both orders is a deadlock waiting for the right
  interleaving, even if the test run never deadlocks.
* :class:`ThreadAccessTracer` swaps a watched object's class for a
  recording subclass and logs which *threads* read and write each
  attribute, then :meth:`~ThreadAccessTracer.assert_contracts` checks
  the observations against the statically declared
  ``_CONCURRENCY_CONTRACT`` (the same declarations reprolint RL201
  trusts): an attribute written by a thread the contract does not
  name, or shared without any declaration, is a violation.

* :class:`ProtocolSanitizer` asserts the RL3xx resource protocols —
  shm segment create/attach/release pairing (no double release, no
  leak at disarm), checkpoint-never-outruns-the-log ordering against
  every live :class:`~repro.stream.durable.wal.WalWriter`, and
  no submit to a drained pool — at runtime. It mirrors the machines
  declared in ``tools/reprolint/protocols.py`` *by name* (``src``
  must not import ``tools``); ``tests/test_sanitizer.py`` keeps the
  two tables aligned.

All four are opt-in (the ``REPRO_SANITIZE=1`` pytest fixture in
``tests/conftest.py``) and report through
:meth:`ConcurrencySanitizer.violations` so a failing run can attach
the lock graph and access trace as artifacts.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import threading
import weakref
from typing import Any, Callable

from repro.errors import ReproError

__all__ = [
    "ConcurrencySanitizer",
    "FsyncProtocolSanitizer",
    "LockOrderSanitizer",
    "ProtocolSanitizer",
    "SanitizerError",
    "ThreadAccessTracer",
]


class SanitizerError(ReproError):
    """A runtime concurrency-contract violation (test-only)."""


#: This module's own path suffix: frames in here never count as a
#: lock's creation site (the sanitizer's internals must not trace
#: themselves). Matched on the full package path so a *test* module
#: named ``test_sanitizer.py`` is still monitored.
_SELF_SUFFIX = os.path.join("repro", "testing", "sanitizer.py")

#: File basenames exempt from the fsync-before-rename check — the
#: advisory files ``atomic_write_*(durable=False)`` covers, whose
#: readers fall back to an fsynced anchor by design.
ADVISORY_BASENAMES = frozenset({"cursor.json"})


def _fd_identity(fd: int) -> tuple[int, int] | None:
    try:
        stat = os.fstat(fd)
    except OSError:
        return None
    return (stat.st_dev, stat.st_ino)


def _path_identity(path: "str | os.PathLike[str]") -> tuple[int, int] | None:
    try:
        stat = os.stat(path)
    except OSError:
        return None
    return (stat.st_dev, stat.st_ino)


class FsyncProtocolSanitizer:
    """Interpose the rename syscalls and enforce fsync-before-rename."""

    def __init__(self, advisory: frozenset[str] = ADVISORY_BASENAMES) -> None:
        self.advisory = advisory
        self.violations: list[dict[str, Any]] = []
        self._fsynced: set[tuple[int, int]] = set()
        self._real_fsync: Callable[[int], None] | None = None
        self._real_replace: Any = None
        self._real_rename: Any = None
        self._guard = threading.Lock()

    def install(self) -> None:
        """Patch ``os.fsync``/``os.replace``/``os.rename`` in place."""
        if self._real_fsync is not None:
            return
        self._real_fsync = os.fsync
        self._real_replace = os.replace
        self._real_rename = os.rename
        os.fsync = self._fsync  # type: ignore[assignment]
        os.replace = self._replace  # type: ignore[assignment]
        os.rename = self._rename  # type: ignore[assignment]

    def uninstall(self) -> None:
        """Restore the original syscall bindings."""
        if self._real_fsync is None:
            return
        os.fsync = self._real_fsync  # type: ignore[assignment]
        os.replace = self._real_replace
        os.rename = self._real_rename
        self._real_fsync = None

    def _fsync(self, fd: int) -> None:
        assert self._real_fsync is not None
        self._real_fsync(fd)
        identity = _fd_identity(fd)
        if identity is not None:
            with self._guard:
                self._fsynced.add(identity)

    def _enforced(self, src: Any, dst: Any) -> bool:
        """Only renames matching the atomic-write signature are checked:
        ``<final-name>.<pid>.tmp`` promoted onto ``<final-name>``."""
        src_name = pathlib.Path(os.fspath(src)).name
        dst_name = pathlib.Path(os.fspath(dst)).name
        if not src_name.endswith(".tmp"):
            return False
        if not src_name.startswith(dst_name + "."):
            return False
        return dst_name not in self.advisory

    def _check(self, kind: str, src: Any, dst: Any) -> None:
        if not self._enforced(src, dst):
            return
        identity = _path_identity(src)
        with self._guard:
            fsynced = identity is not None and identity in self._fsynced
            if identity is not None:
                self._fsynced.discard(identity)
        if not fsynced:
            self.violations.append(
                {
                    "kind": f"{kind}-without-fsync",
                    "src": os.fspath(src),
                    "dst": os.fspath(dst),
                    "thread": threading.current_thread().name,
                }
            )

    def _replace(self, src: Any, dst: Any, **kwargs: Any) -> None:
        self._check("replace", src, dst)
        self._real_replace(src, dst, **kwargs)

    def _rename(self, src: Any, dst: Any, **kwargs: Any) -> None:
        self._check("rename", src, dst)
        self._real_rename(src, dst, **kwargs)


class _TracedLock:
    """A lock wrapper feeding the order graph (no attribute
    forwarding on purpose: only the documented Lock surface exists,
    so accidental reliance on internals fails loudly)."""

    def __init__(self, real: Any, site: str,
                 sanitizer: "LockOrderSanitizer") -> None:
        self._real = real
        self._site = site
        self._sanitizer = sanitizer

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._real.acquire(blocking, timeout)
        if acquired:
            self._sanitizer._on_acquire(self._site)
        return acquired

    def release(self) -> None:
        self._real.release()
        self._sanitizer._on_release(self._site)

    def locked(self) -> bool:
        return self._real.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def _at_fork_reinit(self) -> None:
        # threading's fork handler reinitialises Thread-internal
        # locks; a Thread created from monitored code carries wrapped
        # ones, so the wrapper must forward this or forked children
        # crash in _after_fork.
        self._real._at_fork_reinit()


class LockOrderSanitizer:
    """Record lock acquisition order by creation site; flag cycles."""

    def __init__(
        self, monitored_parts: tuple[str, ...] = ("repro", "tests")
    ) -> None:
        #: Path *components* a creation site must contain for its lock
        #: to be traced (stdlib and third-party locks stay untouched).
        self.monitored_parts = monitored_parts
        self.violations: list[dict[str, Any]] = []
        #: Site → sites acquired while it was held.
        self.edges: dict[str, set[str]] = {}
        self._held = threading.local()
        self._real_lock: Any = None
        self._real_rlock: Any = None
        self._guard = threading.Lock()

    # -- patching ------------------------------------------------------

    def install(self) -> None:
        """Patch the ``threading.Lock``/``RLock`` factories."""
        if self._real_lock is not None:
            return
        self._real_lock = threading.Lock
        self._real_rlock = threading.RLock
        threading.Lock = self._make_lock  # type: ignore[assignment]
        threading.RLock = self._make_rlock  # type: ignore[assignment]

    def uninstall(self) -> None:
        if self._real_lock is None:
            return
        threading.Lock = self._real_lock  # type: ignore[assignment]
        threading.RLock = self._real_rlock  # type: ignore[assignment]
        self._real_lock = None

    def _creation_site(self) -> str | None:
        """``file:line`` of the first monitored non-sanitizer frame, or
        None when the lock is born in unmonitored code."""
        frame = sys._getframe(2)
        while frame is not None:
            filename = frame.f_code.co_filename
            if filename.endswith(_SELF_SUFFIX):
                return None
            if "threading" in filename:
                # Skip threading.py so an Event/Condition born in
                # monitored code is attributed to its real creator...
                frame = frame.f_back
                continue
            # ...but the first non-threading frame *decides*: a lock
            # created by other stdlib internals (multiprocessing's
            # resource tracker, importlib) stays unwrapped even when
            # monitored code is further up the stack.
            parts = pathlib.PurePath(filename).parts
            if any(part in parts for part in self.monitored_parts):
                name = pathlib.PurePath(filename).name
                return f"{name}:{frame.f_lineno}"
            return None
        return None

    def _make_lock(self) -> Any:
        real = self._real_lock()
        site = self._creation_site()
        if site is None:
            return real
        return _TracedLock(real, site, self)

    def _make_rlock(self) -> Any:
        real = self._real_rlock()
        site = self._creation_site()
        if site is None:
            return real
        return _TracedLock(real, site, self)

    # -- the order graph -----------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def _on_acquire(self, site: str) -> None:
        stack = self._stack()
        with self._guard:
            for held in stack:
                if held == site:
                    continue
                self.edges.setdefault(held, set()).add(site)
                if self._reaches(site, held):
                    self.violations.append(
                        {
                            "kind": "lock-order-inversion",
                            "held": held,
                            "acquiring": site,
                            "thread": threading.current_thread().name,
                        }
                    )
        stack.append(site)

    def _on_release(self, site: str) -> None:
        stack = self._stack()
        if site in stack:
            # Remove the innermost occurrence: releases may be
            # out of LIFO order (rare but legal).
            for index in range(len(stack) - 1, -1, -1):
                if stack[index] == site:
                    del stack[index]
                    break

    def _reaches(self, start: str, goal: str) -> bool:
        seen = set()
        pending = [start]
        while pending:
            node = pending.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            pending.extend(self.edges.get(node, ()))
        return False

    def graph_json(self) -> dict[str, Any]:
        """The order graph plus violations, for the CI artifact."""
        with self._guard:
            return {
                "edges": sorted(
                    [a, b] for a, targets in self.edges.items()
                    for b in targets
                ),
                "violations": list(self.violations),
            }


class ThreadAccessTracer:
    """Record which threads touch a watched object's attributes."""

    def __init__(self) -> None:
        #: object id → (contract, creator thread, attr → [(thread, op)]).
        self._watched: dict[int, tuple[dict[str, str], str,
                                       dict[str, list[tuple[str, str]]]]] = {}
        self.violations: list[dict[str, Any]] = []
        self._guard = threading.Lock()

    def watch(
        self, obj: Any, contract: dict[str, str] | None = None
    ) -> None:
        """Swap ``obj``'s class for a recording subclass.

        ``contract`` defaults to the class's declared
        ``_CONCURRENCY_CONTRACT`` (empty when absent). The swap is
        per-instance — other instances of the class are untouched.
        """
        if contract is None:
            contract = getattr(type(obj), "_CONCURRENCY_CONTRACT", {})
        records: dict[str, list[tuple[str, str]]] = {}
        self._watched[id(obj)] = (
            dict(contract),
            threading.current_thread().name,
            records,
        )
        tracer = self
        cls = type(obj)

        class _Traced(cls):  # type: ignore[misc, valid-type]
            def __getattribute__(self, name: str) -> Any:
                value = object.__getattribute__(self, name)
                if not name.startswith("__") and not callable(value):
                    tracer._record(records, name, "read")
                return value

            def __setattr__(self, name: str, value: Any) -> None:
                tracer._record(records, name, "write")
                object.__setattr__(self, name, value)

        _Traced.__name__ = cls.__name__
        _Traced.__qualname__ = cls.__qualname__
        object.__setattr__(obj, "__class__", _Traced)

    def _record(
        self,
        records: dict[str, list[tuple[str, str]]],
        attr: str,
        op: str,
    ) -> None:
        thread = threading.current_thread().name
        with self._guard:
            records.setdefault(attr, []).append((thread, op))

    # -- contract checking ---------------------------------------------

    def assert_contracts(self) -> None:
        """Populate :attr:`violations` from the recorded accesses.

        Rules, per attribute of each watched object:

        * ``single-writer:<NAME>`` — after the creator thread's
          initialisation writes, only the named thread may write
          (``*`` allows any single thread);
        * ``lock:<ATTR>`` — trusted (lock discipline is the
          :class:`LockOrderSanitizer`'s domain);
        * undeclared — if more than one thread touches the attribute
          *and* any non-creator thread writes it, the sharing is real
          and undeclared: a violation.
        """
        with self._guard:
            watched = list(self._watched.values())
        for contract, creator, records in watched:
            for attr, accesses in sorted(records.items()):
                token = contract.get(attr, "")
                threads = {thread for thread, _ in accesses}
                steady_writers = self._steady_writers(accesses, creator)
                if token.startswith("lock:"):
                    continue
                if token.startswith("single-writer:"):
                    allowed = token.split("single-writer:", 1)[1]
                    allowed = allowed.split(" ")[0].split("—")[0].strip()
                    if allowed == "*":
                        if len(steady_writers) > 1:
                            self._violate(attr, token, steady_writers)
                    elif steady_writers - {allowed}:
                        self._violate(attr, token, steady_writers)
                elif token:
                    continue  # unknown token: declared, human-reviewed
                else:
                    if len(threads) > 1 and (steady_writers - {creator}):
                        self._violate(attr, "<undeclared>", steady_writers)

    @staticmethod
    def _steady_writers(
        accesses: list[tuple[str, str]], creator: str
    ) -> set[str]:
        """Writer threads, excluding the creator's initialisation
        prefix (writes before any other thread's first access)."""
        first_foreign = None
        for index, (thread, _) in enumerate(accesses):
            if thread != creator:
                first_foreign = index
                break
        writers = set()
        for index, (thread, op) in enumerate(accesses):
            if op != "write":
                continue
            if thread == creator and (
                first_foreign is None or index < first_foreign
            ):
                continue
            writers.add(thread)
        return writers

    def _violate(
        self, attr: str, token: str, writers: set[str]
    ) -> None:
        self.violations.append(
            {
                "kind": "contract-violation",
                "attr": attr,
                "declared": token,
                "observed_writers": sorted(writers),
            }
        )

    def trace_json(self) -> dict[str, Any]:
        """The full access trace, for the CI artifact."""
        with self._guard:
            objects = []
            for contract, creator, records in self._watched.values():
                objects.append(
                    {
                        "creator": creator,
                        "contract": contract,
                        "accesses": {
                            attr: [[t, op] for t, op in accesses]
                            for attr, accesses in sorted(records.items())
                        },
                    }
                )
        return {"objects": objects, "violations": list(self.violations)}


#: Pool methods that count as "submit" for the supervised-pool
#: protocol (mirrors reprolint's POOL_SUBMIT_METHODS by value).
_POOL_SUBMIT_METHODS = (
    "apply",
    "apply_async",
    "imap",
    "imap_unordered",
    "map",
    "map_async",
    "starmap",
    "starmap_async",
)


class ProtocolSanitizer:
    """Assert the RL3xx resource protocols against what executes.

    Runtime mirror of the machines in ``tools/reprolint/protocols.py``
    (matched by :attr:`PROTOCOL_NAMES`; ``src`` must not import
    ``tools``):

    * **shm-segment** — wraps the :mod:`repro.util.shmseg` lifecycle
      helpers (in the module *and* every from-importer): a segment
      released twice is a violation; a segment still held when the
      sanitizer disarms is a leak.
    * **wal-commit** — wraps
      :meth:`~repro.stream.durable.checkpoint.CheckpointStore.save`:
      a checkpoint claiming ``last_seq`` that any live
      :class:`~repro.stream.durable.wal.WalWriter` has appended but
      not yet fsynced means the checkpoint outran the log.
    * **supervised-pool** — wraps the ``multiprocessing.pool.Pool``
      submit surface: a submit to a pool that is no longer running
      (terminated/closed) is a violation, recorded *before* the
      stdlib's own late error.
    """

    #: Protocol machines this monitor mirrors, by the names declared
    #: in ``tools/reprolint/protocols.py`` (parity-tested).
    PROTOCOL_NAMES = ("shm-segment", "wal-commit", "supervised-pool")

    def __init__(self) -> None:
        self.violations: list[dict[str, Any]] = []
        self._guard = threading.Lock()
        #: id(segment) → lifecycle record for segments seen alive.
        self._segments: dict[int, dict[str, Any]] = {}
        self._writers: "weakref.WeakSet[Any]" = weakref.WeakSet()
        #: (owner, attribute, original) undone in reverse at uninstall.
        self._patches: list[tuple[Any, str, Any]] = []

    # -- patching ------------------------------------------------------

    def _patch(self, owner: Any, name: str, replacement: Any) -> None:
        self._patches.append((owner, name, getattr(owner, name)))
        setattr(owner, name, replacement)

    def install(self) -> None:
        """Wrap the shm helpers, WalWriter/CheckpointStore, and the
        pool submit surface (idempotent)."""
        if self._patches:
            return
        import multiprocessing.pool as mp_pool

        import repro.util as util_pkg
        from repro.core import shmring
        from repro.stream.durable import checkpoint as checkpoint_mod
        from repro.stream.durable import wal as wal_mod
        from repro.util import shmseg

        sanitizer = self
        real_create = shmseg.create_segment
        real_attach = shmseg.attach_segment
        real_release = shmseg.release_segment

        def create_segment(size: int, *, purpose: str = "") -> Any:
            segment = real_create(size, purpose=purpose)
            sanitizer._acquired(segment, "create", purpose)
            return segment

        def attach_segment(name: str) -> Any:
            segment = real_attach(name)
            sanitizer._acquired(segment, "attach", "")
            return segment

        def release_segment(segment: Any, *, unlink: bool) -> None:
            try:
                real_release(segment, unlink=unlink)
            finally:
                # Even a failing release consumed the segment — the
                # caller cannot release harder than calling release.
                sanitizer._released(segment)

        # Patch the defining module and every module-level from-import
        # (from-imports bind the function object, so patching shmseg
        # alone would miss them).
        for owner in (shmseg, util_pkg, shmring):
            self._patch(owner, "create_segment", create_segment)
            self._patch(owner, "attach_segment", attach_segment)
            self._patch(owner, "release_segment", release_segment)

        real_writer_init = wal_mod.WalWriter.__init__

        def writer_init(writer: Any, *args: Any, **kwargs: Any) -> None:
            real_writer_init(writer, *args, **kwargs)
            sanitizer._writers.add(writer)

        self._patch(wal_mod.WalWriter, "__init__", writer_init)

        real_save = checkpoint_mod.CheckpointStore.save

        def save(store: Any, state: Any, **kwargs: Any) -> Any:
            sanitizer._check_save(kwargs.get("last_seq"))
            return real_save(store, state, **kwargs)

        self._patch(checkpoint_mod.CheckpointStore, "save", save)

        for method in _POOL_SUBMIT_METHODS:
            if not hasattr(mp_pool.Pool, method):
                continue

            real = getattr(mp_pool.Pool, method)

            def submit(
                pool: Any,
                *args: Any,
                _real: Any = real,
                _method: str = method,
                **kwargs: Any,
            ) -> Any:
                if pool._state != mp_pool.RUN:
                    sanitizer._violate(
                        "supervised-pool",
                        kind="submit-to-drained-pool",
                        method=_method,
                        pool_state=str(pool._state),
                    )
                return _real(pool, *args, **kwargs)

            self._patch(mp_pool.Pool, method, submit)

    def uninstall(self) -> None:
        """Restore every patched binding and flag leaked segments."""
        for owner, name, original in reversed(self._patches):
            setattr(owner, name, original)
        self._patches.clear()
        with self._guard:
            for record in self._segments.values():
                if record["state"] == "held":
                    self._violate_locked(
                        "shm-segment",
                        kind="segment-leaked",
                        segment=record["name"],
                        acquired=record["acquired"],
                        purpose=record["purpose"],
                    )
            self._segments.clear()

    # -- the shm machine ----------------------------------------------

    def _acquired(self, segment: Any, how: str, purpose: str) -> None:
        with self._guard:
            self._segments[id(segment)] = {
                "name": segment.name,
                "acquired": how,
                "purpose": purpose,
                "state": "held",
            }

    def _released(self, segment: Any) -> None:
        with self._guard:
            record = self._segments.get(id(segment))
            if record is None:
                return  # acquired before the sanitizer armed
            if record["state"] == "released":
                self._violate_locked(
                    "shm-segment",
                    kind="segment-double-release",
                    segment=record["name"],
                )
            record["state"] = "released"

    # -- the wal-commit machine ---------------------------------------

    def _check_save(self, last_seq: Any) -> None:
        if not isinstance(last_seq, int) or last_seq <= 0:
            return
        for writer in list(self._writers):
            with writer._lock:
                appended = writer._last_seq
                synced = appended - writer._unsynced
            # Only a writer that actually holds the record can veto:
            # an unrelated (or behind) log is not this checkpoint's.
            if appended >= last_seq > synced:
                self._violate(
                    "wal-commit",
                    kind="checkpoint-outran-log",
                    checkpoint_last_seq=last_seq,
                    wal_synced_seq=synced,
                    wal_last_seq=appended,
                )

    # -- reporting -----------------------------------------------------

    def _violate(self, protocol: str, **details: Any) -> None:
        with self._guard:
            self._violate_locked(protocol, **details)

    def _violate_locked(self, protocol: str, **details: Any) -> None:
        self.violations.append(
            {
                "protocol": protocol,
                "thread": threading.current_thread().name,
                **details,
            }
        )

    def protocol_json(self) -> dict[str, Any]:
        """Protocol states and violations, for the CI artifact."""
        with self._guard:
            return {
                "protocols": list(self.PROTOCOL_NAMES),
                "segments": [
                    dict(record) for record in self._segments.values()
                ],
                "violations": list(self.violations),
            }


class ConcurrencySanitizer:
    """The four monitors behind one install/uninstall/report façade."""

    def __init__(self) -> None:
        self.fsync = FsyncProtocolSanitizer()
        self.locks = LockOrderSanitizer()
        self.tracer = ThreadAccessTracer()
        self.protocols = ProtocolSanitizer()

    def install(self) -> None:
        """Arm the syscall, lock-factory and protocol interpositions."""
        self.fsync.install()
        self.locks.install()
        self.protocols.install()

    def uninstall(self) -> None:
        """Restore every patched binding."""
        self.protocols.uninstall()
        self.locks.uninstall()
        self.fsync.uninstall()

    def violations(self) -> list[dict[str, Any]]:
        """All violations across the monitors (checks contracts)."""
        self.tracer.assert_contracts()
        return (
            list(self.fsync.violations)
            + list(self.locks.violations)
            + list(self.tracer.violations)
            + list(self.protocols.violations)
        )

    def write_artifacts(self, directory: "str | pathlib.Path") -> None:
        """Dump the lock graph, access trace, and fsync violations."""
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "lock_order_graph.json").write_text(
            json.dumps(self.locks.graph_json(), indent=2) + "\n"
        )
        (directory / "thread_access_trace.json").write_text(
            json.dumps(self.tracer.trace_json(), indent=2) + "\n"
        )
        (directory / "fsync_violations.json").write_text(
            json.dumps(list(self.fsync.violations), indent=2) + "\n"
        )
        (directory / "protocol_violations.json").write_text(
            json.dumps(self.protocols.protocol_json(), indent=2) + "\n"
        )

    def check(self) -> None:
        """Raise :class:`SanitizerError` when any monitor saw a
        violation."""
        found = self.violations()
        if found:
            raise SanitizerError(
                f"{len(found)} concurrency-contract violation(s)",
                violations=found,
            )
