"""Runtime concurrency sanitizers: verify dynamically what reprolint
claims statically.

The RL2xx rules reason about call graphs; these three monitors check
the same contracts against what actually executes, so a rule gap (an
edge the static model cannot see) still gets caught in CI:

* :class:`FsyncProtocolSanitizer` interposes ``os.fsync`` /
  ``os.replace`` / ``os.rename`` and asserts the atomic-write dance:
  any ``<name>.<pid>.tmp`` file promoted onto its final name must
  have been fsynced first (advisory targets like the watch cursor are
  exempt, mirroring ``atomic_write_*(durable=False)``).
* :class:`LockOrderSanitizer` interposes ``threading.Lock`` /
  ``threading.RLock`` creation for locks born in monitored code,
  records the acquisition-order graph by creation site (the lockdep
  model: one node per ``file:line``), and flags any cycle — two locks
  ever taken in both orders is a deadlock waiting for the right
  interleaving, even if the test run never deadlocks.
* :class:`ThreadAccessTracer` swaps a watched object's class for a
  recording subclass and logs which *threads* read and write each
  attribute, then :meth:`~ThreadAccessTracer.assert_contracts` checks
  the observations against the statically declared
  ``_CONCURRENCY_CONTRACT`` (the same declarations reprolint RL201
  trusts): an attribute written by a thread the contract does not
  name, or shared without any declaration, is a violation.

All three are opt-in (the ``REPRO_SANITIZE=1`` pytest fixture in
``tests/conftest.py``) and report through
:meth:`ConcurrencySanitizer.violations` so a failing run can attach
the lock graph and access trace as artifacts.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import threading
from typing import Any, Callable

from repro.errors import ReproError

__all__ = [
    "ConcurrencySanitizer",
    "FsyncProtocolSanitizer",
    "LockOrderSanitizer",
    "SanitizerError",
    "ThreadAccessTracer",
]


class SanitizerError(ReproError):
    """A runtime concurrency-contract violation (test-only)."""


#: This module's own path suffix: frames in here never count as a
#: lock's creation site (the sanitizer's internals must not trace
#: themselves). Matched on the full package path so a *test* module
#: named ``test_sanitizer.py`` is still monitored.
_SELF_SUFFIX = os.path.join("repro", "testing", "sanitizer.py")

#: File basenames exempt from the fsync-before-rename check — the
#: advisory files ``atomic_write_*(durable=False)`` covers, whose
#: readers fall back to an fsynced anchor by design.
ADVISORY_BASENAMES = frozenset({"cursor.json"})


def _fd_identity(fd: int) -> tuple[int, int] | None:
    try:
        stat = os.fstat(fd)
    except OSError:
        return None
    return (stat.st_dev, stat.st_ino)


def _path_identity(path: "str | os.PathLike[str]") -> tuple[int, int] | None:
    try:
        stat = os.stat(path)
    except OSError:
        return None
    return (stat.st_dev, stat.st_ino)


class FsyncProtocolSanitizer:
    """Interpose the rename syscalls and enforce fsync-before-rename."""

    def __init__(self, advisory: frozenset[str] = ADVISORY_BASENAMES) -> None:
        self.advisory = advisory
        self.violations: list[dict[str, Any]] = []
        self._fsynced: set[tuple[int, int]] = set()
        self._real_fsync: Callable[[int], None] | None = None
        self._real_replace: Any = None
        self._real_rename: Any = None
        self._guard = threading.Lock()

    def install(self) -> None:
        """Patch ``os.fsync``/``os.replace``/``os.rename`` in place."""
        if self._real_fsync is not None:
            return
        self._real_fsync = os.fsync
        self._real_replace = os.replace
        self._real_rename = os.rename
        os.fsync = self._fsync  # type: ignore[assignment]
        os.replace = self._replace  # type: ignore[assignment]
        os.rename = self._rename  # type: ignore[assignment]

    def uninstall(self) -> None:
        """Restore the original syscall bindings."""
        if self._real_fsync is None:
            return
        os.fsync = self._real_fsync  # type: ignore[assignment]
        os.replace = self._real_replace
        os.rename = self._real_rename
        self._real_fsync = None

    def _fsync(self, fd: int) -> None:
        assert self._real_fsync is not None
        self._real_fsync(fd)
        identity = _fd_identity(fd)
        if identity is not None:
            with self._guard:
                self._fsynced.add(identity)

    def _enforced(self, src: Any, dst: Any) -> bool:
        """Only renames matching the atomic-write signature are checked:
        ``<final-name>.<pid>.tmp`` promoted onto ``<final-name>``."""
        src_name = pathlib.Path(os.fspath(src)).name
        dst_name = pathlib.Path(os.fspath(dst)).name
        if not src_name.endswith(".tmp"):
            return False
        if not src_name.startswith(dst_name + "."):
            return False
        return dst_name not in self.advisory

    def _check(self, kind: str, src: Any, dst: Any) -> None:
        if not self._enforced(src, dst):
            return
        identity = _path_identity(src)
        with self._guard:
            fsynced = identity is not None and identity in self._fsynced
            if identity is not None:
                self._fsynced.discard(identity)
        if not fsynced:
            self.violations.append(
                {
                    "kind": f"{kind}-without-fsync",
                    "src": os.fspath(src),
                    "dst": os.fspath(dst),
                    "thread": threading.current_thread().name,
                }
            )

    def _replace(self, src: Any, dst: Any, **kwargs: Any) -> None:
        self._check("replace", src, dst)
        self._real_replace(src, dst, **kwargs)

    def _rename(self, src: Any, dst: Any, **kwargs: Any) -> None:
        self._check("rename", src, dst)
        self._real_rename(src, dst, **kwargs)


class _TracedLock:
    """A lock wrapper feeding the order graph (no attribute
    forwarding on purpose: only the documented Lock surface exists,
    so accidental reliance on internals fails loudly)."""

    def __init__(self, real: Any, site: str,
                 sanitizer: "LockOrderSanitizer") -> None:
        self._real = real
        self._site = site
        self._sanitizer = sanitizer

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._real.acquire(blocking, timeout)
        if acquired:
            self._sanitizer._on_acquire(self._site)
        return acquired

    def release(self) -> None:
        self._real.release()
        self._sanitizer._on_release(self._site)

    def locked(self) -> bool:
        return self._real.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def _at_fork_reinit(self) -> None:
        # threading's fork handler reinitialises Thread-internal
        # locks; a Thread created from monitored code carries wrapped
        # ones, so the wrapper must forward this or forked children
        # crash in _after_fork.
        self._real._at_fork_reinit()


class LockOrderSanitizer:
    """Record lock acquisition order by creation site; flag cycles."""

    def __init__(
        self, monitored_parts: tuple[str, ...] = ("repro", "tests")
    ) -> None:
        #: Path *components* a creation site must contain for its lock
        #: to be traced (stdlib and third-party locks stay untouched).
        self.monitored_parts = monitored_parts
        self.violations: list[dict[str, Any]] = []
        #: Site → sites acquired while it was held.
        self.edges: dict[str, set[str]] = {}
        self._held = threading.local()
        self._real_lock: Any = None
        self._real_rlock: Any = None
        self._guard = threading.Lock()

    # -- patching ------------------------------------------------------

    def install(self) -> None:
        """Patch the ``threading.Lock``/``RLock`` factories."""
        if self._real_lock is not None:
            return
        self._real_lock = threading.Lock
        self._real_rlock = threading.RLock
        threading.Lock = self._make_lock  # type: ignore[assignment]
        threading.RLock = self._make_rlock  # type: ignore[assignment]

    def uninstall(self) -> None:
        if self._real_lock is None:
            return
        threading.Lock = self._real_lock  # type: ignore[assignment]
        threading.RLock = self._real_rlock  # type: ignore[assignment]
        self._real_lock = None

    def _creation_site(self) -> str | None:
        """``file:line`` of the first monitored non-sanitizer frame, or
        None when the lock is born in unmonitored code."""
        frame = sys._getframe(2)
        while frame is not None:
            filename = frame.f_code.co_filename
            if filename.endswith(_SELF_SUFFIX):
                return None
            if "threading" in filename:
                # Skip threading.py so an Event/Condition born in
                # monitored code is attributed to its real creator...
                frame = frame.f_back
                continue
            # ...but the first non-threading frame *decides*: a lock
            # created by other stdlib internals (multiprocessing's
            # resource tracker, importlib) stays unwrapped even when
            # monitored code is further up the stack.
            parts = pathlib.PurePath(filename).parts
            if any(part in parts for part in self.monitored_parts):
                name = pathlib.PurePath(filename).name
                return f"{name}:{frame.f_lineno}"
            return None
        return None

    def _make_lock(self) -> Any:
        real = self._real_lock()
        site = self._creation_site()
        if site is None:
            return real
        return _TracedLock(real, site, self)

    def _make_rlock(self) -> Any:
        real = self._real_rlock()
        site = self._creation_site()
        if site is None:
            return real
        return _TracedLock(real, site, self)

    # -- the order graph -----------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def _on_acquire(self, site: str) -> None:
        stack = self._stack()
        with self._guard:
            for held in stack:
                if held == site:
                    continue
                self.edges.setdefault(held, set()).add(site)
                if self._reaches(site, held):
                    self.violations.append(
                        {
                            "kind": "lock-order-inversion",
                            "held": held,
                            "acquiring": site,
                            "thread": threading.current_thread().name,
                        }
                    )
        stack.append(site)

    def _on_release(self, site: str) -> None:
        stack = self._stack()
        if site in stack:
            # Remove the innermost occurrence: releases may be
            # out of LIFO order (rare but legal).
            for index in range(len(stack) - 1, -1, -1):
                if stack[index] == site:
                    del stack[index]
                    break

    def _reaches(self, start: str, goal: str) -> bool:
        seen = set()
        pending = [start]
        while pending:
            node = pending.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            pending.extend(self.edges.get(node, ()))
        return False

    def graph_json(self) -> dict[str, Any]:
        """The order graph plus violations, for the CI artifact."""
        with self._guard:
            return {
                "edges": sorted(
                    [a, b] for a, targets in self.edges.items()
                    for b in targets
                ),
                "violations": list(self.violations),
            }


class ThreadAccessTracer:
    """Record which threads touch a watched object's attributes."""

    def __init__(self) -> None:
        #: object id → (contract, creator thread, attr → [(thread, op)]).
        self._watched: dict[int, tuple[dict[str, str], str,
                                       dict[str, list[tuple[str, str]]]]] = {}
        self.violations: list[dict[str, Any]] = []
        self._guard = threading.Lock()

    def watch(
        self, obj: Any, contract: dict[str, str] | None = None
    ) -> None:
        """Swap ``obj``'s class for a recording subclass.

        ``contract`` defaults to the class's declared
        ``_CONCURRENCY_CONTRACT`` (empty when absent). The swap is
        per-instance — other instances of the class are untouched.
        """
        if contract is None:
            contract = getattr(type(obj), "_CONCURRENCY_CONTRACT", {})
        records: dict[str, list[tuple[str, str]]] = {}
        self._watched[id(obj)] = (
            dict(contract),
            threading.current_thread().name,
            records,
        )
        tracer = self
        cls = type(obj)

        class _Traced(cls):  # type: ignore[misc, valid-type]
            def __getattribute__(self, name: str) -> Any:
                value = object.__getattribute__(self, name)
                if not name.startswith("__") and not callable(value):
                    tracer._record(records, name, "read")
                return value

            def __setattr__(self, name: str, value: Any) -> None:
                tracer._record(records, name, "write")
                object.__setattr__(self, name, value)

        _Traced.__name__ = cls.__name__
        _Traced.__qualname__ = cls.__qualname__
        object.__setattr__(obj, "__class__", _Traced)

    def _record(
        self,
        records: dict[str, list[tuple[str, str]]],
        attr: str,
        op: str,
    ) -> None:
        thread = threading.current_thread().name
        with self._guard:
            records.setdefault(attr, []).append((thread, op))

    # -- contract checking ---------------------------------------------

    def assert_contracts(self) -> None:
        """Populate :attr:`violations` from the recorded accesses.

        Rules, per attribute of each watched object:

        * ``single-writer:<NAME>`` — after the creator thread's
          initialisation writes, only the named thread may write
          (``*`` allows any single thread);
        * ``lock:<ATTR>`` — trusted (lock discipline is the
          :class:`LockOrderSanitizer`'s domain);
        * undeclared — if more than one thread touches the attribute
          *and* any non-creator thread writes it, the sharing is real
          and undeclared: a violation.
        """
        with self._guard:
            watched = list(self._watched.values())
        for contract, creator, records in watched:
            for attr, accesses in sorted(records.items()):
                token = contract.get(attr, "")
                threads = {thread for thread, _ in accesses}
                steady_writers = self._steady_writers(accesses, creator)
                if token.startswith("lock:"):
                    continue
                if token.startswith("single-writer:"):
                    allowed = token.split("single-writer:", 1)[1]
                    allowed = allowed.split(" ")[0].split("—")[0].strip()
                    if allowed == "*":
                        if len(steady_writers) > 1:
                            self._violate(attr, token, steady_writers)
                    elif steady_writers - {allowed}:
                        self._violate(attr, token, steady_writers)
                elif token:
                    continue  # unknown token: declared, human-reviewed
                else:
                    if len(threads) > 1 and (steady_writers - {creator}):
                        self._violate(attr, "<undeclared>", steady_writers)

    @staticmethod
    def _steady_writers(
        accesses: list[tuple[str, str]], creator: str
    ) -> set[str]:
        """Writer threads, excluding the creator's initialisation
        prefix (writes before any other thread's first access)."""
        first_foreign = None
        for index, (thread, _) in enumerate(accesses):
            if thread != creator:
                first_foreign = index
                break
        writers = set()
        for index, (thread, op) in enumerate(accesses):
            if op != "write":
                continue
            if thread == creator and (
                first_foreign is None or index < first_foreign
            ):
                continue
            writers.add(thread)
        return writers

    def _violate(
        self, attr: str, token: str, writers: set[str]
    ) -> None:
        self.violations.append(
            {
                "kind": "contract-violation",
                "attr": attr,
                "declared": token,
                "observed_writers": sorted(writers),
            }
        )

    def trace_json(self) -> dict[str, Any]:
        """The full access trace, for the CI artifact."""
        with self._guard:
            objects = []
            for contract, creator, records in self._watched.values():
                objects.append(
                    {
                        "creator": creator,
                        "contract": contract,
                        "accesses": {
                            attr: [[t, op] for t, op in accesses]
                            for attr, accesses in sorted(records.items())
                        },
                    }
                )
        return {"objects": objects, "violations": list(self.violations)}


class ConcurrencySanitizer:
    """The three monitors behind one install/uninstall/report façade."""

    def __init__(self) -> None:
        self.fsync = FsyncProtocolSanitizer()
        self.locks = LockOrderSanitizer()
        self.tracer = ThreadAccessTracer()

    def install(self) -> None:
        """Arm the syscall and lock-factory interpositions."""
        self.fsync.install()
        self.locks.install()

    def uninstall(self) -> None:
        """Restore every patched binding."""
        self.locks.uninstall()
        self.fsync.uninstall()

    def violations(self) -> list[dict[str, Any]]:
        """All violations across the three monitors (checks contracts)."""
        self.tracer.assert_contracts()
        return (
            list(self.fsync.violations)
            + list(self.locks.violations)
            + list(self.tracer.violations)
        )

    def write_artifacts(self, directory: "str | pathlib.Path") -> None:
        """Dump the lock graph, access trace, and fsync violations."""
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "lock_order_graph.json").write_text(
            json.dumps(self.locks.graph_json(), indent=2) + "\n"
        )
        (directory / "thread_access_trace.json").write_text(
            json.dumps(self.tracer.trace_json(), indent=2) + "\n"
        )
        (directory / "fsync_violations.json").write_text(
            json.dumps(list(self.fsync.violations), indent=2) + "\n"
        )

    def check(self) -> None:
        """Raise :class:`SanitizerError` when any monitor saw a
        violation."""
        found = self.violations()
        if found:
            raise SanitizerError(
                f"{len(found)} concurrency-contract violation(s)",
                violations=found,
            )
