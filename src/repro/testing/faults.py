"""Deterministic fault injection for the resilience test suite.

A :class:`FaultPlan` is a picklable callable matching the classifier's
``FaultInjector`` seam (``plan(chunk_index, attempt, in_worker)``). It
fires configured faults at exact (chunk, attempt) positions — or at
seeded rates via :meth:`FaultPlan.from_rates` — so every failure a
test provokes is reproducible bit for bit:

* ``"crash"``   — raise :class:`InjectedCrash` in the worker (a worker
  exception; the pool survives, the chunk fails).
* ``"hang"``    — sleep far past any reasonable deadline (exercises
  per-chunk timeouts and pool reclamation).
* ``"die"``     — ``os._exit`` the worker process (a hard death: the
  task can never complete; only a timeout can reclaim it).
* ``"corrupt"`` — raise :class:`InjectedCorruption`; with
  ``scope="any"`` it also fires in the in-process fallback, modelling
  a chunk whose payload is unrecoverably bad.
* ``"slot_corrupt"`` — flip bits in the shared-memory ring slot the
  worker is about to gather (``transport="shm"`` only; a no-op under
  the pickle transport). The next read fails its header integrity
  check with a :class:`~repro.errors.TransportError`; the parent
  repairs the header from its authoritative copy and retries, so this
  is transient by construction.

``attempt=0`` matches every attempt (persistent faults such as
corrupted payloads); ``attempt=n`` fires only on the n-th attempt
(transient faults that a retry survives). ``scope="worker"`` restricts
a fault to pool workers so the in-process fallback succeeds.

Fired faults are appended to ``log_path`` (or ``$REPRO_FAULT_LOG``),
one line per event — CI uploads this log when the resilience suite
fails.

For ingest resilience, :func:`corrupt_file` deterministically damages
chosen (or seeded) lines of a text file and returns the exact line
numbers it touched, so quarantine reports can be asserted line by
line.

For the durable daemon, :class:`DurabilityFaultPlan` matches the
checkpoint/daemon ``fault_hook`` seam (``plan(point)``) and fires
process-level faults at named hook points — ``"kill"`` SIGKILLs the
process mid-window or mid-checkpoint, ``"torn_write"`` drops a partial
``*.tmp`` into a directory first (the exact debris of dying inside
``atomic_write_bytes``), ``"disk_full"`` raises ``ENOSPC`` — so the
crash-recovery suite reproduces every death it asserts about.
"""

from __future__ import annotations

import errno
import os
import random
import signal
import time
from dataclasses import dataclass

__all__ = [
    "DurabilityFaultPlan",
    "DurabilityFaultSpec",
    "FaultPlan",
    "FaultSpec",
    "InjectedCorruption",
    "InjectedCrash",
    "InjectedFault",
    "corrupt_file",
]

#: Environment variable naming the fault-event log file.
FAULT_LOG_ENV = "REPRO_FAULT_LOG"

_KINDS = ("crash", "hang", "die", "corrupt", "slot_corrupt")
_SCOPES = ("worker", "any")


class InjectedFault(RuntimeError):
    """Base class of all deliberately injected failures."""


class InjectedCrash(InjectedFault):
    """A worker raised mid-chunk (transient, survives a retry)."""


class InjectedCorruption(InjectedFault):
    """A chunk payload is unrecoverably corrupt (persistent)."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault at an exact (chunk, attempt) position."""

    kind: str
    chunk_index: int
    attempt: int = 1  # 0 = every attempt
    scope: str = "worker"
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.scope not in _SCOPES:
            raise ValueError(f"unknown fault scope {self.scope!r}")

    def matches(self, chunk_index: int, attempt: int, in_worker: bool) -> bool:
        if self.chunk_index != chunk_index:
            return False
        if self.attempt not in (0, attempt):
            return False
        if self.scope == "worker" and not in_worker:
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, picklable set of faults to fire during a run."""

    faults: tuple[FaultSpec, ...] = ()
    log_path: str | None = None

    def __call__(self, chunk_index: int, attempt: int, in_worker: bool) -> None:
        for fault in self.faults:
            if not fault.matches(chunk_index, attempt, in_worker):
                continue
            self._log(fault, attempt, in_worker)
            if fault.kind == "crash":
                raise InjectedCrash(
                    f"injected crash at chunk {chunk_index} attempt {attempt}"
                )
            if fault.kind == "corrupt":
                raise InjectedCorruption(
                    f"injected corrupt payload at chunk {chunk_index}"
                )
            if fault.kind == "slot_corrupt":
                # Imported lazily: the staged-read seam lives next to
                # the ring itself, and plans that never fire this kind
                # must not pull the transport in.
                from repro.core import shmring

                shmring.corrupt_staged_header()
            elif fault.kind == "hang":
                time.sleep(fault.hang_seconds)
            elif fault.kind == "die":  # pragma: no cover - kills the process
                os._exit(23)

    def _log(self, fault: FaultSpec, attempt: int, in_worker: bool) -> None:
        path = self.log_path or os.environ.get(FAULT_LOG_ENV)
        if not path:
            return
        try:
            with open(path, "a") as handle:
                handle.write(
                    f"pid={os.getpid()} chunk={fault.chunk_index} "
                    f"attempt={attempt} kind={fault.kind} "
                    f"scope={fault.scope} in_worker={in_worker}\n"
                )
        except OSError:  # pragma: no cover - logging must never mask faults
            pass

    @classmethod
    def from_rates(
        cls,
        seed: int,
        n_chunks: int,
        *,
        crash_rate: float = 0.0,
        hang_rate: float = 0.0,
        die_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        hang_seconds: float = 3600.0,
        log_path: str | None = None,
    ) -> "FaultPlan":
        """A seeded plan: each chunk independently draws one fault.

        Rates are probabilities per chunk, evaluated in the order
        crash → hang → die → corrupt (a chunk gets at most one fault).
        Crashes, hangs, and deaths are transient first-attempt,
        worker-scoped faults; corruption is persistent (``attempt=0``)
        and fires in the fallback too (``scope="any"``).
        """
        rng = random.Random(seed)
        faults: list[FaultSpec] = []
        for index in range(n_chunks):
            draw = rng.random()
            if draw < crash_rate:
                faults.append(FaultSpec("crash", index))
            elif draw < crash_rate + hang_rate:
                faults.append(
                    FaultSpec("hang", index, hang_seconds=hang_seconds)
                )
            elif draw < crash_rate + hang_rate + die_rate:
                faults.append(FaultSpec("die", index))
            elif draw < crash_rate + hang_rate + die_rate + corrupt_rate:
                faults.append(
                    FaultSpec("corrupt", index, attempt=0, scope="any")
                )
        return cls(tuple(faults), log_path)


# -- durability faults -----------------------------------------------------

_DURABILITY_KINDS = ("kill", "torn_write", "disk_full")


@dataclass(frozen=True)
class DurabilityFaultSpec:
    """One planned process-level fault at a named daemon hook point.

    ``point`` names a ``fault_hook`` position — the checkpoint store
    fires ``"checkpoint_begin"`` / ``"checkpoint_payload"`` /
    ``"checkpoint_written"``, the daemon fires ``"window_emitted"`` —
    and ``occurrence`` selects which visit triggers (1-based; 0 fires
    on every visit). Kinds:

    * ``"kill"`` — ``SIGKILL`` the current process (no cleanup, no
      atexit, no flushing: the honest crash).
    * ``"torn_write"`` — write ``tear_bytes`` of garbage to
      ``tear_path`` (a half-written ``*.tmp``), then ``SIGKILL``:
      the on-disk debris of dying inside a tmp-file write.
    * ``"disk_full"`` — raise ``OSError(ENOSPC)`` so failure-policy
      handling (retry / degrade / fail_fast) is exercised in-process.
    """

    kind: str
    point: str
    occurrence: int = 1  # 0 = every visit to the point
    tear_path: str | None = None
    tear_bytes: int = 64

    def __post_init__(self) -> None:
        if self.kind not in _DURABILITY_KINDS:
            raise ValueError(f"unknown durability fault kind {self.kind!r}")
        if self.kind == "torn_write" and not self.tear_path:
            raise ValueError("torn_write faults need a tear_path")


class DurabilityFaultPlan:
    """Callable ``fault_hook`` firing specs at exact hook visits.

    Unlike :class:`FaultPlan` this one is stateful (it counts visits
    per point), so build a fresh plan per run. Fired faults are logged
    to ``log_path`` / ``$REPRO_FAULT_LOG`` *before* any kill, so the
    log records the death that is about to happen.
    """

    def __init__(
        self,
        faults: tuple[DurabilityFaultSpec, ...] = (),
        log_path: str | None = None,
    ) -> None:
        self.faults = tuple(faults)
        self.log_path = log_path
        self._visits: dict[str, int] = {}

    def __call__(self, point: str) -> None:
        visit = self._visits.get(point, 0) + 1
        self._visits[point] = visit
        for fault in self.faults:
            if fault.point != point:
                continue
            if fault.occurrence not in (0, visit):
                continue
            self._log(fault, visit)
            self._fire(fault)

    def _fire(self, fault: DurabilityFaultSpec) -> None:
        if fault.kind == "disk_full":
            raise OSError(errno.ENOSPC, "injected disk full", fault.point)
        if fault.kind == "torn_write" and fault.tear_path:
            # The torn temporary a real crash inside atomic_write_bytes
            # leaves behind: partial bytes, no rename, no fsync.
            try:
                with open(fault.tear_path, "wb") as handle:
                    handle.write(b"\xde\xad" * (fault.tear_bytes // 2))
            except OSError:
                pass
        # kill and torn_write both end here: a real SIGKILL, so no
        # finally blocks, context managers, or atexit hooks run.
        os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover

    def _log(self, fault: DurabilityFaultSpec, visit: int) -> None:
        path = self.log_path or os.environ.get(FAULT_LOG_ENV)
        if not path:
            return
        try:
            with open(path, "a") as handle:
                handle.write(
                    f"pid={os.getpid()} point={fault.point} "
                    f"visit={visit} kind={fault.kind}\n"
                )
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:  # pragma: no cover - logging must never mask faults
            pass


# -- ingest corruption ----------------------------------------------------


def _mutate(line: str, mode: str, rng: random.Random) -> str:
    if mode == "truncate":
        return line[: max(1, len(line) // 2)]
    if mode == "garbage":
        length = rng.randint(5, 20)
        return "".join(
            rng.choice("!@#$%^&*qzxjv0123456789") for _ in range(length)
        )
    raise ValueError(f"unknown corruption mode {mode!r}")


def corrupt_file(
    path,
    *,
    positions: tuple[int, ...] = (),
    rate: float = 0.0,
    seed: int = 0,
    mode: str = "truncate",
    skip_lines: int = 1,
) -> list[int]:
    """Deterministically corrupt lines of a text file, in place.

    ``positions`` are explicit 1-based line numbers; ``rate`` adds a
    seeded per-line corruption probability over the remaining lines.
    The first ``skip_lines`` lines (headers) are never rate-corrupted.
    Returns the sorted line numbers actually corrupted, so tests can
    assert quarantine reports against the exact damage done.
    """
    rng = random.Random(seed)
    with open(path) as handle:
        lines = handle.read().splitlines()
    wanted = set(positions)
    corrupted: list[int] = []
    for number in range(1, len(lines) + 1):
        hit = number in wanted
        if not hit and rate > 0.0 and number > skip_lines:
            hit = rng.random() < rate
        if hit:
            lines[number - 1] = _mutate(lines[number - 1], mode, rng)
            corrupted.append(number)
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    return corrupted
