"""Scenario assembly: the full four-week synthetic trace.

``generate_traffic`` composes every traffic population into one
:class:`~repro.ixp.flows.FlowTable`:

1. per-member ground-truth source pools (incl. hidden arrangements),
2. member emission behaviours drawn from the Figure 5 Venn shape,
3. regular traffic (diurnal, heavy-tailed member volumes),
4. stray traffic (NAT leaks, router strays),
5. per-member baseline leaks (a trickle per emitting member, so that
   member-level class membership is observable at sampling scale),
6. attack events: spoofed floods and NTP amplification with partially
   visible amplifier responses.

Class volume fractions are configurable; defaults are roughly 10× the
paper's shares because the synthetic sampled volume is ~1000× smaller
than the real trace — the *relative* structure (which class is bigger,
by what order) is what the defaults preserve (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bgp.rib import GlobalRIB
from repro.datasets.zmap import NTPServerCensus, generate_ntp_census
from repro.ixp.flows import PROTO_TCP, PROTO_UDP, FlowTable, TruthLabel
from repro.ixp.model import IXP
from repro.topology.model import ASTopology
from repro.traffic.addressing import (
    BogonSampler,
    IntervalSampler,
    build_unrouted_sampler,
)
from repro.traffic.attacks import (
    AmplificationEvent,
    AttackPlan,
    FloodEvent,
    _event_windows,
    emit_amplification,
    emit_flood,
)
from repro.traffic.behaviors import MemberBehavior, assign_behaviors
from repro.traffic.diurnal import DiurnalModel
from repro.traffic.forwarding import SourcePool, build_source_pools
from repro.traffic.poolsampler import PoolAddressSampler
from repro.traffic.regular import generate_regular, member_flow_counts
from repro.traffic.stray import generate_nat_leaks, generate_router_strays
from repro.util.timeconst import MEASUREMENT_SECONDS


@dataclass(slots=True)
class ScenarioConfig:
    """Knobs of the synthetic trace."""

    total_regular_rows: int = 200_000
    window_seconds: int = MEASUREMENT_SECONDS
    seed: int = 11

    #: Class budgets as fractions of total regular sampled packets.
    bogon_fraction: float = 0.002
    unrouted_fraction: float = 0.003
    invalid_flood_fraction: float = 0.0008
    ntp_trigger_fraction: float = 0.0045

    #: Split of the bogon budget between NAT leakage and bogon floods.
    nat_leak_share: float = 0.65
    #: Split of the unrouted budget that goes to gaming floods.
    gaming_share: float = 0.06
    #: Baseline leak volume as a multiple of volume × leak rate.
    baseline_rate_scale: float = 0.5
    #: Hard cap on baseline leak rows per member and class.
    baseline_max_rows: int = 60

    #: Router strays: fraction of a member's volume leaked by routers.
    router_stray_rate: float = 0.0022

    #: NTP amplification shape.
    ntp_attacker_count: int = 14
    dominant_ntp_share: float = 0.92
    ntp_events_per_attacker: float = 1.6
    amplifier_census_fraction: float = 0.16
    router_victim_fraction: float = 0.30
    response_visibility: float = 0.55
    n_ntp_servers: int = 2000

    #: Number of "hot" flood victims shared across attacks (Fig. 11a).
    hot_victim_count: int = 40
    flood_events_per_member: float = 1.3


@dataclass(slots=True)
class TrafficScenario:
    """The generated trace plus all ground truth the analyses need."""

    flows: FlowTable
    plan: AttackPlan
    behaviors: dict[int, MemberBehavior]
    pools: dict[int, SourcePool]
    census: NTPServerCensus
    diurnal: DiurnalModel
    config: ScenarioConfig


def generate_traffic(
    topo: ASTopology,
    ixp: IXP,
    rib: GlobalRIB,
    config: ScenarioConfig | None = None,
    census: NTPServerCensus | None = None,
    policies: dict | None = None,
    collector_peer_asns: set[int] | None = None,
) -> TrafficScenario:
    """Generate the full synthetic trace for one measurement window.

    ``policies`` (the announcement policies used for BGP simulation)
    align customer egress shares with announcements; without them all
    customers are treated as symmetric. ``collector_peer_asns`` are
    excluded from hosting attack traffic (see
    :func:`_small_cone_behaviors`).
    """
    config = config or ScenarioConfig()
    rng = np.random.default_rng(config.seed)
    members = list(ixp.member_asns)
    transit_members = {
        asn for asn in members if ixp.member(asn).transits_via_ixp
    }
    if policies:
        from repro.topology.policies import asymmetric_origins, primary_provider_map

        primaries = primary_provider_map(policies)
        asymmetric = asymmetric_origins(policies)
    else:
        primaries, asymmetric = {}, set()
    pools = build_source_pools(
        topo, members, transit_members,
        primary_providers=primaries, asymmetric_asns=asymmetric,
    )
    behaviors = assign_behaviors(rng, ixp)
    diurnal = DiurnalModel(rng, window_seconds=config.window_seconds)
    pool_sampler = PoolAddressSampler()

    routed_space = rib.routed_space()
    routed_sampler = IntervalSampler(routed_space)
    unrouted_sampler = build_unrouted_sampler(routed_space, rng)
    bogon_sampler = BogonSampler()
    if census is None:
        census = generate_ntp_census(
            rng, routed_space, n_servers=config.n_ntp_servers
        )

    regular = generate_regular(
        rng, ixp, pools, diurnal, config.total_regular_rows, pool_sampler
    )
    volumes = _member_packet_volumes(regular)
    total_packets = float(regular.packets.sum()) or 1.0
    member_array = np.array(members, dtype=np.int64)

    tables = [regular]
    tables.extend(
        _stray_tables(
            rng, topo, ixp, config, behaviors, volumes, total_packets,
            diurnal, pools, pool_sampler, member_array, bogon_sampler,
        )
    )
    tables.append(
        _baseline_leaks(
            rng, config, behaviors, volumes, unrouted_sampler,
            routed_sampler, bogon_sampler, member_array, routed_space,
        )
    )

    all_link_addrs = np.array(
        [addr for pair in topo.link_addresses.values() for addr in pair],
        dtype=np.uint64,
    )
    if all_link_addrs.size:
        routed_pids, _ = rib.lookup_many(all_link_addrs)
        routed_router_addrs = all_link_addrs[routed_pids >= 0]
    else:
        routed_router_addrs = all_link_addrs
    plan = _plan_attacks(
        rng, config, behaviors, volumes, total_packets, routed_sampler,
        census, topo, collector_peer_asns or set(), routed_router_addrs,
    )
    response_member_of = _response_member_map(rng, rib, pools)
    for event in plan.floods:
        dst_member = _other_member(rng, member_array, event.member)
        tables.append(
            emit_flood(
                rng, event, unrouted_sampler, routed_sampler, bogon_sampler,
                dst_member,
            )
        )
    for event in plan.amplifications:
        dst_member = _other_member(rng, member_array, event.member)
        trigger, response = emit_amplification(
            rng, event, dst_member, response_member_of,
            response_visibility=config.response_visibility,
        )
        tables.append(trigger)
        tables.append(response)

    flows = FlowTable.concat(tables).sort_by_time()
    return TrafficScenario(
        flows=flows,
        plan=plan,
        behaviors=behaviors,
        pools=pools,
        census=census,
        diurnal=diurnal,
        config=config,
    )


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _member_packet_volumes(regular: FlowTable) -> dict[int, float]:
    volumes: dict[int, float] = {}
    members, inverse = np.unique(regular.member, return_inverse=True)
    sums = np.zeros(members.size, dtype=np.float64)
    np.add.at(sums, inverse, regular.packets.astype(np.float64))
    for asn, total in zip(members.tolist(), sums.tolist()):
        volumes[int(asn)] = float(total)
    return volumes


def _other_member(
    rng: np.random.Generator, member_array: np.ndarray, member: int
) -> int:
    if member_array.size <= 1:
        return int(member_array[0]) if member_array.size else -1
    while True:
        candidate = int(rng.choice(member_array))
        if candidate != member:
            return candidate


def _stray_tables(
    rng, topo, ixp, config, behaviors, volumes, total_packets,
    diurnal, pools, pool_sampler, member_array, bogon_sampler,
) -> list[FlowTable]:
    tables: list[FlowTable] = []
    bogon_emitters = [b for b in behaviors.values() if b.emits_bogon]
    for behavior in bogon_emitters:
        volume = volumes.get(behavior.asn, 0.0)
        if volume < 20:
            continue  # would dominate a near-silent member's traffic
        expected = volume * behavior.bogon_rate * config.nat_leak_share
        n_rows = 1 + int(rng.poisson(max(0.5, expected)))
        n_rows = min(n_rows, max(2, int(volume * 0.10)))
        tables.append(
            generate_nat_leaks(
                rng, behavior.asn, n_rows, diurnal, pools, pool_sampler,
                member_array, bogon_sampler,
            )
        )
    for behavior in behaviors.values():
        if not behavior.router_stray:
            continue
        volume = volumes.get(behavior.asn, 0.0)
        n_rows = int(rng.poisson(max(1.0, volume * config.router_stray_rate)))
        tables.append(
            generate_router_strays(
                rng, behavior.asn, n_rows, topo, pools, pool_sampler,
                member_array, config.window_seconds,
            )
        )
    return tables


def _baseline_leaks(
    rng, config, behaviors, volumes, unrouted_sampler, routed_sampler,
    bogon_sampler, member_array, routed_space,
) -> FlowTable:
    """A trickle of single-packet spoofed rows per emitting member."""
    rows_src: list[np.ndarray] = []
    rows_member: list[np.ndarray] = []
    for behavior in behaviors.values():
        kinds = []
        if behavior.emits_unrouted:
            kinds.append(("unrouted", behavior.unrouted_rate))
        if behavior.emits_invalid:
            kinds.append(("invalid", behavior.invalid_rate))
        if behavior.emits_bogon:
            kinds.append(("bogon", behavior.bogon_rate))
        volume = volumes.get(behavior.asn, 0.0)
        if volume < 20:
            continue  # would dominate a near-silent member's traffic
        for kind, rate in kinds:
            expected = volume * rate * config.baseline_rate_scale
            n = 1 + int(rng.poisson(max(0.3, expected)))
            n = min(n, config.baseline_max_rows)
            if kind == "unrouted":
                src = unrouted_sampler.sample(rng, n)
            elif kind == "invalid":
                src = routed_sampler.sample(rng, n)
            else:
                src = bogon_sampler.sample(rng, n)
            rows_src.append(src)
            rows_member.append(np.full(n, behavior.asn, dtype=np.int64))
    if not rows_src:
        return FlowTable.empty()
    src = np.concatenate(rows_src)
    member = np.concatenate(rows_member)
    n = src.size
    is_tcp = rng.random(n) < 0.7
    proto = np.where(is_tcp, PROTO_TCP, PROTO_UDP).astype(np.uint8)
    dst_port = np.where(
        is_tcp,
        rng.choice(np.array([80, 443, 443], dtype=np.uint32), size=n),
        rng.integers(1024, 65536, size=n, dtype=np.uint32),
    ).astype(np.uint32)
    sizes = rng.normal(48, 6, size=n).clip(40, 90)
    packets = np.ones(n, dtype=np.int64)
    dst = routed_sampler.sample(rng, n)
    return FlowTable(
        src=src,
        dst=dst,
        proto=proto,
        src_port=rng.integers(1024, 65536, size=n, dtype=np.uint32),
        dst_port=dst_port,
        packets=packets,
        bytes=(packets * sizes).astype(np.int64),
        member=member,
        dst_member=rng.choice(member_array, size=n).astype(np.int64),
        time=rng.integers(0, config.window_seconds, size=n).astype(np.int64),
        truth=np.full(n, int(TruthLabel.SPOOF_FLOOD), dtype=np.uint8),
    )


def _small_cone_behaviors(behaviors, topo, avoid_asns=frozenset(), max_cone: int = 4) -> dict:
    """Members plausible as attack-traffic sources.

    Spoofed-source attacks originate from hosts inside edge networks
    (hosting boxes, compromised CPEs), not from the middle of a big
    carrier — and networks that feed route collectors are large,
    professionally run networks, not spoofing sources. Restricting
    routed-source attacks to small-cone, non-feeding members also
    keeps their triggers Invalid under every cone approach, as
    observed in the paper.
    """
    small = {
        asn: b
        for asn, b in behaviors.items()
        if len(topo.customer_cone(asn)) <= max_cone and asn not in avoid_asns
    }
    return small or behaviors


def _plan_attacks(
    rng, config, behaviors, volumes, total_packets, routed_sampler,
    census, topo, collector_peer_asns, router_addr_pool=None,
) -> AttackPlan:
    plan = AttackPlan()
    hot_victims = routed_sampler.sample(rng, config.hot_victim_count)
    edge_behaviors = _small_cone_behaviors(behaviors, topo, collector_peer_asns)

    def pick_victim() -> int:
        if hot_victims.size and rng.random() < 0.7:
            # Zipf over the hot list concentrates the top destinations.
            rank = min(
                int(rng.zipf(1.4)) - 1, hot_victims.size - 1
            )
            return int(hot_victims[rank])
        return int(routed_sampler.sample(rng, 1)[0])

    unrouted_budget = config.unrouted_fraction * total_packets
    invalid_budget = config.invalid_flood_fraction * total_packets
    bogon_flood_budget = (
        config.bogon_fraction * (1 - config.nat_leak_share) * total_packets
    )

    _plan_floods(
        rng, plan, config, behaviors, volumes, "unrouted",
        unrouted_budget * (1 - config.gaming_share), pick_victim,
        member_share_cap=0.08,
    )
    _plan_floods(
        rng, plan, config, behaviors, volumes, "unrouted",
        unrouted_budget * config.gaming_share, pick_victim,
        kind="gaming_flood", member_share_cap=0.08,
    )
    _plan_floods(
        rng, plan, config, behaviors, volumes, "bogon", bogon_flood_budget,
        pick_victim, member_share_cap=0.08,
    )
    _plan_floods(
        rng, plan, config, edge_behaviors, volumes, "routed_random",
        invalid_budget, pick_victim,
    )
    _plan_amplifications(
        rng, plan, config, edge_behaviors, total_packets, routed_sampler,
        census, topo, router_addr_pool,
    )
    return plan


def _plan_floods(
    rng, plan, config, behaviors, volumes, src_mode, budget, pick_victim,
    kind: str = "syn_flood",
    member_share_cap: float | None = None,
) -> None:
    flag = {
        "unrouted": "emits_unrouted",
        "bogon": "emits_bogon",
        "routed_random": "emits_invalid",
    }[src_mode]
    emitters = [b for b in behaviors.values() if getattr(b, flag)]
    if not emitters or budget < 1:
        return
    if member_share_cap is not None:
        sized = [b for b in emitters if volumes.get(b.asn, 0.0) >= 50]
        emitters = sized or emitters
    # Attack hosts are proportionally more likely in bigger networks.
    emitter_weights = np.array(
        [max(volumes.get(b.asn, 0.0), 1.0) for b in emitters]
    )
    emitter_probs = emitter_weights / emitter_weights.sum()
    # Heavy-tailed split of the budget over a handful of attack hosts.
    n_events = max(1, int(rng.poisson(config.flood_events_per_member * 3)))
    weights = rng.pareto(1.1, size=n_events) + 0.05
    packet_split = rng.multinomial(int(budget), weights / weights.sum())
    windows = _event_windows(rng, n_events, config.window_seconds)
    for (start, duration), packets in zip(windows, packet_split):
        if packets < 1:
            continue
        behavior = emitters[int(rng.choice(len(emitters), p=emitter_probs))]
        if member_share_cap is not None:
            # Keep the member's class share bounded (Fig. 4: bogon
            # tops out near 10%, unrouted near 9% in the paper).
            cap = int(volumes.get(behavior.asn, 0.0) * member_share_cap)
            packets = min(int(packets), max(cap, 1))
        plan.floods.append(
            FloodEvent(
                member=behavior.asn,
                victim_addr=pick_victim(),
                start=start,
                duration=duration,
                sampled_packets=int(packets),
                src_mode=src_mode,
                kind=kind,
            )
        )


def _plan_amplifications(
    rng, plan, config, behaviors, total_packets, routed_sampler, census,
    topo, router_addr_pool=None,
) -> None:
    emitters = [b for b in behaviors.values() if b.emits_invalid]
    if not emitters:
        return
    budget = int(config.ntp_trigger_fraction * total_packets)
    if budget < 10:
        return
    attackers = list(emitters)
    rng.shuffle(attackers)
    attackers = attackers[: config.ntp_attacker_count]
    dominant = attackers[0]
    shares = np.full(len(attackers), (1 - config.dominant_ntp_share) / max(1, len(attackers) - 1))
    shares[0] = config.dominant_ntp_share
    if router_addr_pool is not None and len(router_addr_pool):
        router_addrs = [int(a) for a in router_addr_pool]
    else:
        router_addrs = [
            addr
            for addrs in topo.link_addresses.values()
            for addr in addrs
        ]
    current_census = census.current()
    for attacker_rank, (behavior, share) in enumerate(zip(attackers, shares)):
        attacker_budget = int(budget * share)
        mean_events = config.ntp_events_per_attacker * (
            3.0 if attacker_rank == 0 else 1.0
        )
        n_events = max(1, int(rng.poisson(mean_events)))
        weights = rng.pareto(1.2, size=n_events) + 0.1
        split = rng.multinomial(attacker_budget, weights / weights.sum())
        windows = _event_windows(rng, n_events, config.window_seconds)
        for (start, duration), packets in zip(windows, split):
            if packets < 5:
                continue
            victim_is_router = (
                bool(router_addrs)
                and rng.random() < config.router_victim_fraction
            )
            victim = (
                int(router_addrs[int(rng.integers(0, len(router_addrs)))])
                if victim_is_router
                else int(routed_sampler.sample(rng, 1)[0])
            )
            # Alternate strategies so both Figure 11b shapes appear
            # even among the dominant attacker's events.
            strategy = (
                "concentrated"
                if len(plan.amplifications) % 2 == 0
                else "distributed"
            )
            if strategy == "concentrated":
                n_amp = int(rng.integers(5, 95))
            else:
                # Spray attacks contact thousands of amplifiers, but at
                # sampling scale each needs a chance to show up.
                n_amp = int(rng.integers(300, 3500))
                n_amp = min(n_amp, max(50, int(packets) * 2))
            amplifiers = _draw_amplifiers(
                rng, n_amp, current_census, routed_sampler,
                config.amplifier_census_fraction,
            )
            plan.amplifications.append(
                AmplificationEvent(
                    member=behavior.asn,
                    victim_addr=victim,
                    start=start,
                    duration=duration,
                    sampled_packets=int(packets),
                    amplifiers=amplifiers,
                    strategy=strategy,
                    victim_is_router=victim_is_router,
                )
            )
    del dominant


def _draw_amplifiers(
    rng, n_amp, census_addrs, routed_sampler, census_fraction
) -> np.ndarray:
    """Amplifier targets: partly census-known, mostly unknown servers."""
    n_known = int(n_amp * census_fraction)
    n_known = min(n_known, census_addrs.size)
    known = (
        rng.choice(census_addrs, size=n_known, replace=False)
        if n_known
        else np.zeros(0, dtype=np.uint64)
    )
    unknown = routed_sampler.sample(rng, n_amp - n_known)
    return np.unique(np.concatenate([known, unknown]).astype(np.uint64))


def _response_member_map(
    rng: np.random.Generator,
    rib: GlobalRIB,
    pools: dict[int, SourcePool],
) -> dict[int, int]:
    """Map each visible origin AS to one member that carries it.

    Used to route amplifier responses back across the fabric: an
    amplifier's responses are visible iff its origin AS appears in some
    member's visible pool. Returned keyed by *origin index-free* ASN
    lookup is done by the caller via the RIB.
    """
    from repro.traffic.forwarding import SourceKind

    # Prefer members that carry the origin as own/customer/sibling
    # space — a response forwarded by such a member is unambiguously
    # regular traffic; peer-cone carriers are a fallback.
    preferred_kinds = (SourceKind.OWN, SourceKind.CUSTOMER, SourceKind.SIBLING)
    origin_to_member: dict[int, int] = {}
    fallback: dict[int, int] = {}
    for member, pool in pools.items():
        for entry in pool.visible_entries():
            if entry.kind in preferred_kinds:
                origin_to_member.setdefault(entry.origin, member)
            else:
                fallback.setdefault(entry.origin, member)
    for origin, member in fallback.items():
        origin_to_member.setdefault(origin, member)
    # Translate to an address-level map lazily: the emitters look up
    # concrete amplifier addresses, so expose a resolver dict keyed by
    # address via a small proxy object.
    return _AmplifierMemberResolver(rib, origin_to_member)


class _AmplifierMemberResolver(dict):
    """dict-like: amplifier address → carrying member (via RIB origin)."""

    def __init__(self, rib: GlobalRIB, origin_to_member: dict[int, int]) -> None:
        super().__init__()
        self._rib = rib
        self._origin_to_member = origin_to_member

    def __contains__(self, addr: object) -> bool:  # type: ignore[override]
        return self._resolve(addr) is not None

    def __getitem__(self, addr):  # type: ignore[override]
        member = self._resolve(addr)
        if member is None:
            raise KeyError(addr)
        return member

    def _resolve(self, addr) -> int | None:
        cached = super().get(addr)  # type: ignore[arg-type]
        if cached is not None:
            return cached if cached >= 0 else None
        _prefix_id, origin_index = self._rib.lookup(int(addr))
        member: int | None = None
        if origin_index >= 0:
            origin = self._rib.indexer.asn(int(origin_index))
            member = self._origin_to_member.get(origin)
        super().__setitem__(addr, member if member is not None else -1)
        return member
