"""Stray (non-malicious illegitimate) traffic.

Two populations the paper separates from intentional spoofing:

* **NAT leakage** — devices behind misconfigured NATs whose private
  source addresses escape to the inter-domain Internet. Driven by
  regular user behaviour, so it follows the diurnal pattern and is
  dominated by small TCP connection attempts to web ports (the paper's
  explanation for the slight day pattern in Bogon, Section 6.1).
* **Router strays** — routers emitting packets (ICMP TTL-exceeded,
  ping replies) from transit-link interface addresses, often numbered
  out of the provider's space, which the cones cannot attribute to the
  emitting member (Section 5.2). ~83% ICMP in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.ixp.flows import (
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    FlowTable,
    TruthLabel,
)
from repro.topology.model import ASTopology
from repro.traffic.addressing import BogonSampler
from repro.traffic.diurnal import DiurnalModel
from repro.traffic.forwarding import SourcePool
from repro.traffic.poolsampler import PoolAddressSampler


def generate_nat_leaks(
    rng: np.random.Generator,
    member: int,
    n_rows: int,
    diurnal: DiurnalModel,
    pools: dict[int, SourcePool],
    pool_sampler: PoolAddressSampler,
    dst_members: np.ndarray,
    bogon_sampler: BogonSampler | None = None,
) -> FlowTable:
    """Bogon-source leakage from one member (user-driven timing)."""
    if n_rows <= 0:
        return FlowTable.empty()
    bogon_sampler = bogon_sampler or BogonSampler()
    src = bogon_sampler.sample(rng, n_rows)
    dst_member = rng.choice(dst_members, size=n_rows)
    dst = _destination_addrs(rng, dst_member, pools, pool_sampler)
    # Mostly failed TCP handshakes towards web services.
    is_tcp = rng.random(n_rows) < 0.85
    proto = np.where(is_tcp, PROTO_TCP, PROTO_UDP).astype(np.uint8)
    dst_port = np.where(
        is_tcp,
        rng.choice(np.array([80, 443, 443, 8080], dtype=np.uint32), size=n_rows),
        rng.integers(1024, 65536, size=n_rows, dtype=np.uint32),
    ).astype(np.uint32)
    sizes = rng.normal(52, 6, size=n_rows).clip(40, 120)
    packets = np.ones(n_rows, dtype=np.int64)
    return FlowTable(
        src=src,
        dst=dst,
        proto=proto,
        src_port=rng.integers(1024, 65536, size=n_rows, dtype=np.uint32),
        dst_port=dst_port,
        packets=packets,
        bytes=(packets * sizes).astype(np.int64),
        member=np.full(n_rows, member, dtype=np.int64),
        dst_member=dst_member.astype(np.int64),
        time=diurnal.sample_times(rng, n_rows),
        truth=np.full(n_rows, int(TruthLabel.STRAY_NAT), dtype=np.uint8),
    )


def member_router_addresses(topo: ASTopology, member: int) -> list[int]:
    """Interface addresses of the member's routers on transit links.

    The customer-side address of a (provider, customer) link belongs to
    the member when it is the customer; the provider-side address when
    it is the provider.
    """
    addrs: list[int] = []
    for (provider, customer), (p_addr, c_addr) in topo.link_addresses.items():
        if member == customer:
            addrs.append(c_addr)
        elif member == provider:
            addrs.append(p_addr)
    return addrs


def generate_router_strays(
    rng: np.random.Generator,
    member: int,
    n_rows: int,
    topo: ASTopology,
    pools: dict[int, SourcePool],
    pool_sampler: PoolAddressSampler,
    dst_members: np.ndarray,
    window_seconds: int,
) -> FlowTable:
    """Router-originated stray packets from one member."""
    router_addrs = member_router_addresses(topo, member)
    if n_rows <= 0 or not router_addrs:
        return FlowTable.empty()
    src = rng.choice(np.array(router_addrs, dtype=np.uint64), size=n_rows)
    dst_member = rng.choice(dst_members, size=n_rows)
    dst = _destination_addrs(rng, dst_member, pools, pool_sampler)
    # Paper: ~83% ICMP, 14.4% UDP, 2.3% TCP from router sources.
    roll = rng.random(n_rows)
    proto = np.where(
        roll < 0.83, PROTO_ICMP, np.where(roll < 0.974, PROTO_UDP, PROTO_TCP)
    ).astype(np.uint8)
    src_port = np.where(
        proto == PROTO_ICMP,
        0,
        rng.integers(1024, 65536, size=n_rows),
    ).astype(np.uint32)
    dst_port = np.where(
        proto == PROTO_ICMP,
        0,
        rng.integers(1, 65536, size=n_rows),
    ).astype(np.uint32)
    sizes = rng.normal(72, 16, size=n_rows).clip(40, 160)
    packets = np.ones(n_rows, dtype=np.int64)
    return FlowTable(
        src=src,
        dst=dst,
        proto=proto,
        src_port=src_port,
        dst_port=dst_port,
        packets=packets,
        bytes=(packets * sizes).astype(np.int64),
        member=np.full(n_rows, member, dtype=np.int64),
        dst_member=dst_member.astype(np.int64),
        time=rng.integers(0, window_seconds, size=n_rows).astype(np.int64),
        truth=np.full(n_rows, int(TruthLabel.STRAY_ROUTER), dtype=np.uint8),
    )


def _destination_addrs(
    rng: np.random.Generator,
    dst_member: np.ndarray,
    pools: dict[int, SourcePool],
    pool_sampler: PoolAddressSampler,
) -> np.ndarray:
    """Addresses inside each destination member's visible pool."""
    dst = np.empty(dst_member.size, dtype=np.uint64)
    for target in np.unique(dst_member):
        mask = dst_member == target
        count = int(mask.sum())
        pool = pools.get(int(target))
        if pool is None or not pool.entries:
            dst[mask] = rng.integers(1 << 24, 223 << 24, size=count, dtype=np.uint64)
            continue
        addrs, _origins, _hidden = pool_sampler.sample(
            rng, pool, count, visible_only=True
        )
        dst[mask] = addrs
    return dst
