"""Vectorised sampling of addresses from member source pools."""

from __future__ import annotations

import numpy as np

from repro.net.prefixset import PrefixSet
from repro.traffic.addressing import IntervalSampler
from repro.traffic.forwarding import SourceEntry, SourcePool


class PoolAddressSampler:
    """Draws (address, origin, hidden) tuples from member pools.

    Entry choice is weighted by ``entry.weight * address_space_size``
    so that bigger customers emit proportionally more traffic, then an
    address is drawn uniformly inside the chosen entry's prefixes.
    """

    def __init__(self) -> None:
        self._entry_samplers: dict[int, IntervalSampler] = {}
        self._pool_cache: dict[int, tuple[list[SourceEntry], np.ndarray]] = {}

    def _pool_distribution(
        self, pool: SourcePool
    ) -> tuple[list[SourceEntry], np.ndarray]:
        cached = self._pool_cache.get(pool.member)
        if cached is not None:
            return cached
        entries = pool.entries
        if not entries:
            raise ValueError(f"member AS{pool.member} has an empty source pool")
        weights = np.array(
            [
                entry.weight
                * sum(p.num_addresses for p in entry.prefixes) ** 0.5
                for entry in entries
            ]
        )
        weights /= weights.sum()
        self._pool_cache[pool.member] = (entries, weights)
        return entries, weights

    def _sampler_for(self, entry: SourceEntry) -> IntervalSampler:
        sampler = self._entry_samplers.get(id(entry))
        if sampler is None:
            sampler = IntervalSampler(PrefixSet(entry.prefixes))
            self._entry_samplers[id(entry)] = sampler
        return sampler

    def sample(
        self,
        rng: np.random.Generator,
        pool: SourcePool,
        n: int,
        visible_only: bool = False,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw ``n`` sources: returns (addrs, origin_asns, hidden_mask)."""
        entries, weights = self._pool_distribution(pool)
        if visible_only:
            visible = np.array([not e.hidden for e in entries])
            if not visible.any():
                raise ValueError(f"AS{pool.member}: no visible pool entries")
            weights = np.where(visible, weights, 0.0)
            weights = weights / weights.sum()
        picks = rng.choice(len(entries), size=n, p=weights)
        addrs = np.empty(n, dtype=np.uint64)
        origins = np.empty(n, dtype=np.int64)
        hidden = np.zeros(n, dtype=bool)
        for entry_index in np.unique(picks):
            entry = entries[entry_index]
            mask = picks == entry_index
            count = int(mask.sum())
            addrs[mask] = self._sampler_for(entry).sample(rng, count)
            origins[mask] = entry.origin
            hidden[mask] = entry.hidden
        return addrs, origins, hidden
