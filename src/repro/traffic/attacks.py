"""Attack traffic: spoofed floods and NTP amplification (Section 7).

Two families, matching the paper's attack-pattern analysis:

* **Random spoofing** — SYN floods on web ports and UDP floods on game
  servers, every packet carrying a fresh forged source drawn from
  unrouted, bogon, or random routed space. These produce the
  unique-source-per-packet signature of Figure 11a's rightmost bin.
* **Selective spoofing** — NTP amplification: trigger packets carry
  the victim's address as source and are sprayed at amplifiers on UDP
  port 123, either concentrated on a handful of amplifiers or spread
  uniformly over thousands (the two strategies of Figure 11b). Where
  the amplifier's network is itself reachable through the fabric, the
  amplified responses appear as regular traffic an order of magnitude
  larger in bytes (Figure 11c).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ixp.flows import PROTO_TCP, PROTO_UDP, FlowTable, TruthLabel
from repro.traffic.addressing import BogonSampler, IntervalSampler
from repro.traffic.apps import PORT_HTTP, PORT_HTTPS, PORT_NTP, PORT_STEAM
from repro.util.timeconst import HOUR

#: Mean size (bytes) of an NTP trigger packet and of a response packet.
NTP_TRIGGER_SIZE = 60.0
NTP_RESPONSE_SIZE = 550.0


@dataclass(slots=True)
class FloodEvent:
    """One randomly spoofed flooding attack."""

    member: int  # ingress member whose network hosts the attacker
    victim_addr: int
    start: int
    duration: int
    sampled_packets: int
    src_mode: str  # "unrouted" | "bogon" | "routed_random"
    kind: str = "syn_flood"  # or "gaming_flood"


@dataclass(slots=True)
class AmplificationEvent:
    """One selectively spoofed NTP amplification attack."""

    member: int  # ingress member emitting the trigger traffic
    victim_addr: int
    start: int
    duration: int
    sampled_packets: int
    amplifiers: np.ndarray  # uint64 addresses (dst of triggers)
    strategy: str  # "concentrated" | "distributed"
    victim_is_router: bool = False


@dataclass(slots=True)
class AttackPlan:
    """Everything the emitters need, plus ground truth for analyses."""

    floods: list[FloodEvent] = field(default_factory=list)
    amplifications: list[AmplificationEvent] = field(default_factory=list)

    def ntp_victims(self) -> list[int]:
        return [event.victim_addr for event in self.amplifications]


def _zipf_split(
    rng: np.random.Generator, total: int, n_bins: int, exponent: float
) -> np.ndarray:
    """Split ``total`` packets over ``n_bins`` with a Zipf profile."""
    ranks = np.arange(1, n_bins + 1, dtype=np.float64)
    weights = ranks**-exponent
    weights /= weights.sum()
    return rng.multinomial(total, weights)


def _event_windows(
    rng: np.random.Generator, n: int, window_seconds: int
) -> list[tuple[int, int]]:
    """Random (start, duration) pairs; durations from minutes to a day."""
    windows = []
    for _ in range(n):
        duration = int(rng.lognormal(np.log(2 * HOUR), 1.2))
        duration = int(np.clip(duration, 5 * 60, 36 * HOUR))
        start = int(rng.integers(0, max(1, window_seconds - duration)))
        windows.append((start, duration))
    return windows


def emit_flood(
    rng: np.random.Generator,
    event: FloodEvent,
    unrouted_sampler: IntervalSampler,
    routed_sampler: IntervalSampler,
    bogon_sampler: BogonSampler,
    dst_member: int,
) -> FlowTable:
    """Materialise a flood: one row per sampled packet, fresh source each."""
    n = event.sampled_packets
    if n <= 0:
        return FlowTable.empty()
    if event.src_mode == "unrouted":
        src = unrouted_sampler.sample(rng, n)
    elif event.src_mode == "bogon":
        src = bogon_sampler.sample(rng, n)
    else:
        src = routed_sampler.sample(rng, n)
    if event.kind == "gaming_flood":
        proto = np.full(n, PROTO_UDP, dtype=np.uint8)
        dst_port = np.full(n, PORT_STEAM, dtype=np.uint32)
        sizes = rng.normal(90, 30, size=n).clip(40, 400)
    else:
        proto = np.full(n, PROTO_TCP, dtype=np.uint8)
        dst_port = rng.choice(
            np.array([PORT_HTTP, PORT_HTTPS, PORT_HTTPS, 53, 22], dtype=np.uint32),
            size=n,
        )
        sizes = rng.normal(46, 4, size=n).clip(40, 60)
    packets = np.ones(n, dtype=np.int64)
    return FlowTable(
        src=src,
        dst=np.full(n, event.victim_addr, dtype=np.uint64),
        proto=proto,
        src_port=rng.integers(1024, 65536, size=n, dtype=np.uint32),
        dst_port=dst_port,
        packets=packets,
        bytes=(packets * sizes).astype(np.int64),
        member=np.full(n, event.member, dtype=np.int64),
        dst_member=np.full(n, dst_member, dtype=np.int64),
        time=(event.start + rng.integers(0, max(1, event.duration), size=n)).astype(
            np.int64
        ),
        truth=np.full(
            n,
            int(
                TruthLabel.SPOOF_GAMING
                if event.kind == "gaming_flood"
                else TruthLabel.SPOOF_FLOOD
            ),
            dtype=np.uint8,
        ),
    )


def emit_amplification(
    rng: np.random.Generator,
    event: AmplificationEvent,
    dst_member: int,
    response_member_of: dict[int, int],
    response_visibility: float = 0.5,
    response_packet_ratio: float = 0.95,
) -> tuple[FlowTable, FlowTable]:
    """Materialise trigger and (partially visible) response traffic.

    ``response_member_of`` maps an amplifier address to the member that
    would carry its responses across the fabric; amplifiers missing
    from the map never produce visible responses.
    """
    n_amplifiers = event.amplifiers.size
    if n_amplifiers == 0 or event.sampled_packets <= 0:
        return FlowTable.empty(), FlowTable.empty()
    exponent = 1.6 if event.strategy == "concentrated" else 0.05
    per_amplifier = _zipf_split(rng, event.sampled_packets, n_amplifiers, exponent)
    active = per_amplifier > 0
    amplifiers = event.amplifiers[active]
    counts = per_amplifier[active]

    trigger_rows = _split_rows_by_hour(rng, amplifiers, counts, event)
    trig_src_port = rng.integers(1024, 65536, size=len(trigger_rows[0]), dtype=np.uint32)
    n_rows = trigger_rows[0].size
    trigger = FlowTable(
        src=np.full(n_rows, event.victim_addr, dtype=np.uint64),
        dst=trigger_rows[0],
        proto=np.full(n_rows, PROTO_UDP, dtype=np.uint8),
        src_port=trig_src_port,
        dst_port=np.full(n_rows, PORT_NTP, dtype=np.uint32),
        packets=trigger_rows[1],
        bytes=(trigger_rows[1] * NTP_TRIGGER_SIZE).astype(np.int64),
        member=np.full(n_rows, event.member, dtype=np.int64),
        dst_member=np.full(n_rows, dst_member, dtype=np.int64),
        time=trigger_rows[2],
        truth=np.full(n_rows, int(TruthLabel.SPOOF_TRIGGER), dtype=np.uint8),
    )

    visible = np.array(
        [
            int(a) in response_member_of and rng.random() < response_visibility
            for a in amplifiers
        ]
    )
    if not visible.any():
        return trigger, FlowTable.empty()
    resp_amplifiers = amplifiers[visible]
    resp_counts = np.maximum(
        1, (counts[visible] * response_packet_ratio).astype(np.int64)
    )
    rows = _split_rows_by_hour(rng, resp_amplifiers, resp_counts, event)
    n_resp = rows[0].size
    members = np.array(
        [response_member_of[int(a)] for a in rows[0]], dtype=np.int64
    )
    response = FlowTable(
        src=rows[0],
        dst=np.full(n_resp, event.victim_addr, dtype=np.uint64),
        proto=np.full(n_resp, PROTO_UDP, dtype=np.uint8),
        src_port=np.full(n_resp, PORT_NTP, dtype=np.uint32),
        dst_port=rng.integers(1024, 65536, size=n_resp, dtype=np.uint32),
        packets=rows[1],
        bytes=(rows[1] * NTP_RESPONSE_SIZE).astype(np.int64),
        member=members,
        dst_member=np.full(n_resp, dst_member, dtype=np.int64),
        time=rows[2],
        truth=np.full(n_resp, int(TruthLabel.AMP_RESPONSE), dtype=np.uint8),
    )
    return trigger, response


def _split_rows_by_hour(
    rng: np.random.Generator,
    amplifiers: np.ndarray,
    counts: np.ndarray,
    event: AmplificationEvent,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Spread per-amplifier packet counts over the event duration.

    Heavy amplifiers are split into one row per active hour so the
    Figure 11c time series has per-hour resolution; light ones emit a
    single row at a random time inside the event window.
    """
    duration_hours = max(1, event.duration // HOUR)
    dst_list: list[np.ndarray] = []
    pkts_list: list[np.ndarray] = []
    time_list: list[np.ndarray] = []
    heavy = counts > 20
    # Light amplifiers: one row each.
    if (~heavy).any():
        light_dst = amplifiers[~heavy]
        light_counts = counts[~heavy]
        dst_list.append(light_dst)
        pkts_list.append(light_counts)
        time_list.append(
            event.start
            + rng.integers(0, max(1, event.duration), size=light_dst.size)
        )
    # Heavy amplifiers: one row per hour of the event.
    for amplifier, count in zip(amplifiers[heavy], counts[heavy]):
        split = rng.multinomial(
            int(count), np.full(duration_hours, 1.0 / duration_hours)
        )
        hours = np.flatnonzero(split)
        dst_list.append(np.full(hours.size, amplifier, dtype=np.uint64))
        pkts_list.append(split[hours].astype(np.int64))
        time_list.append(
            event.start + hours * HOUR + rng.integers(0, HOUR, size=hours.size)
        )
    return (
        np.concatenate(dst_list).astype(np.uint64),
        np.concatenate(pkts_list).astype(np.int64),
        np.concatenate(time_list).astype(np.int64),
    )
