"""Per-member emission behaviours (filtering consistency).

The paper infers filtering strategies from what members *emit*
(Figure 5's Venn diagram). The generator works the other way around:
each member draws a ground-truth emission behaviour — which classes of
illegitimate traffic its (lack of) egress filtering lets out — from a
distribution shaped like the paper's Venn, and per-class leak
intensities from heavy-tailed distributions capped the way Figure 4
shows (bogon ≲ 10% of a member's traffic, unrouted ≲ 9%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ixp.model import IXP

#: Venn cells over the ground-truth emission sets (B = bogon leaks,
#: U = unrouted-source spoofing, I = routed-source spoofing), shaped
#: after Figure 5. Cells: frozenset of emitted kinds → probability.
VENN_DISTRIBUTION: tuple[tuple[frozenset[str], float], ...] = (
    (frozenset(), 0.1802),
    (frozenset({"bogon"}), 0.0963),
    (frozenset({"unrouted"}), 0.022),
    (frozenset({"invalid"}), 0.0757),
    (frozenset({"bogon", "unrouted"}), 0.1554),
    (frozenset({"bogon", "invalid"}), 0.1898),
    (frozenset({"bogon", "unrouted", "invalid"}), 0.2806),
)


@dataclass(slots=True)
class MemberBehavior:
    """Ground-truth emission behaviour of one member."""

    asn: int
    emits_bogon: bool
    emits_unrouted: bool
    emits_invalid: bool
    #: Whether the member's routers leak stray packets (ICMP etc.).
    router_stray: bool
    #: Leak intensity per class, as a fraction of the member's regular
    #: traffic volume.
    bogon_rate: float = 0.0
    unrouted_rate: float = 0.0
    invalid_rate: float = 0.0

    @property
    def fully_filtered(self) -> bool:
        return not (self.emits_bogon or self.emits_unrouted or self.emits_invalid)


def _leak_rate(rng: np.random.Generator, cap: float) -> float:
    """Heavy-tailed leak fraction in (0, cap]."""
    raw = float(rng.pareto(1.3)) * 0.002 + 0.0004
    return min(raw, cap)


def assign_behaviors(
    rng: np.random.Generator,
    ixp: IXP,
    router_stray_fraction: float = 0.35,
    bogon_cap: float = 0.10,
    unrouted_cap: float = 0.09,
    invalid_cap: float = 0.30,
) -> dict[int, MemberBehavior]:
    """Draw an emission behaviour for every IXP member."""
    cells = [kinds for kinds, _prob in VENN_DISTRIBUTION]
    probs = np.array([prob for _kinds, prob in VENN_DISTRIBUTION])
    probs = probs / probs.sum()
    behaviors: dict[int, MemberBehavior] = {}
    for asn in ixp.member_asns:
        cell = cells[int(rng.choice(len(cells), p=probs))]
        behavior = MemberBehavior(
            asn=asn,
            emits_bogon="bogon" in cell,
            emits_unrouted="unrouted" in cell,
            emits_invalid="invalid" in cell,
            router_stray=rng.random() < router_stray_fraction,
        )
        if behavior.emits_bogon:
            behavior.bogon_rate = _leak_rate(rng, bogon_cap)
        if behavior.emits_unrouted:
            behavior.unrouted_rate = _leak_rate(rng, unrouted_cap)
        if behavior.emits_invalid:
            behavior.invalid_rate = _leak_rate(rng, invalid_cap)
        behaviors[asn] = behavior
    return behaviors
