"""Address samplers for the traffic generators.

All samplers draw integer IPv4 addresses from interval sets with
vectorised numpy operations:

* :class:`IntervalSampler` — uniform (optionally spiked) sampling from
  an arbitrary :class:`~repro.net.prefixset.PrefixSet`.
* :class:`BogonSampler` — bogon sources weighted the way Figure 10
  shows them: concentrated in RFC1918, with a uniform tail over
  multicast and future-use space.
* :func:`build_origin_sampler` — per-origin-AS sampling inside the
  origin's announced prefixes (legitimate source generation).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.bogons import bogon_prefix_set
from repro.net.prefix import Prefix
from repro.net.prefixset import PrefixSet
from repro.net.sampling import IntervalSampler

__all__ = [
    "BogonSampler",
    "IntervalSampler",
    "OriginAddressSampler",
    "build_unrouted_sampler",
    "routable_space",
    "unrouted_space",
]


class BogonSampler:
    """Bogon source addresses with realistic concentration.

    Figure 10: the majority of bogon sources fall in private ranges
    (spikes at 10/8 and 192.168/16), with a flatter contribution from
    multicast and future-use space.
    """

    _CATEGORIES: tuple[tuple[str, float], ...] = (
        ("rfc1918_10", 0.40),
        ("rfc1918_192", 0.22),
        ("rfc1918_172", 0.10),
        ("cgn", 0.06),
        ("multicast", 0.12),
        ("future", 0.08),
        ("other", 0.02),
    )

    _RANGES: dict[str, Prefix] = {
        "rfc1918_10": Prefix.parse("10.0.0.0/8"),
        "rfc1918_192": Prefix.parse("192.168.0.0/16"),
        "rfc1918_172": Prefix.parse("172.16.0.0/12"),
        "cgn": Prefix.parse("100.64.0.0/10"),
        "multicast": Prefix.parse("224.0.0.0/4"),
        "future": Prefix.parse("240.0.0.0/4"),
        "other": Prefix.parse("169.254.0.0/16"),
    }

    def __init__(self) -> None:
        names, weights = zip(*self._CATEGORIES)
        self._names = names
        self._weights = np.array(weights) / sum(weights)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        picks = rng.choice(len(self._names), size=n, p=self._weights)
        addrs = np.empty(n, dtype=np.uint64)
        for index, name in enumerate(self._names):
            mask = picks == index
            count = int(mask.sum())
            if not count:
                continue
            prefix = self._RANGES[name]
            addrs[mask] = rng.integers(
                prefix.first, prefix.last + 1, size=count, dtype=np.uint64
            )
        return addrs


def routable_space() -> PrefixSet:
    """Public unicast space: everything minus bogons (the paper's
    "routable" category, 86.2% of IPv4)."""
    return PrefixSet.universe() - bogon_prefix_set()


def unrouted_space(routed: PrefixSet) -> PrefixSet:
    """Routable space not covered by any announcement."""
    return routable_space() - routed


def build_unrouted_sampler(
    routed: PrefixSet,
    rng: np.random.Generator,
    spike_share: float = 0.12,
) -> IntervalSampler:
    """Sampler over unrouted space with one pronounced /12-sized spike."""
    space = unrouted_space(routed)
    spike: tuple[int, int] | None = None
    intervals = [iv for iv in space.intervals() if iv[1] - iv[0] >= 1 << 20]
    if intervals:
        start, end = intervals[int(rng.integers(0, len(intervals)))]
        width = min(end - start, 1 << 20)
        spike = (start, start + width)
    return IntervalSampler(space, spike=spike, spike_share=spike_share)


class OriginAddressSampler:
    """Random addresses inside a specific origin AS's announced space."""

    def __init__(self, prefixes_by_origin: dict[int, list[Prefix]]) -> None:
        self._samplers: dict[int, IntervalSampler] = {}
        self._prefixes = prefixes_by_origin

    def known_origins(self) -> list[int]:
        return sorted(self._prefixes)

    def sample(self, rng: np.random.Generator, origin: int, n: int) -> np.ndarray:
        sampler = self._samplers.get(origin)
        if sampler is None:
            prefixes = self._prefixes.get(origin)
            if not prefixes:
                raise KeyError(f"origin AS{origin} has no announced prefixes")
            sampler = IntervalSampler(PrefixSet(prefixes))
            self._samplers[origin] = sampler
        return sampler.sample(rng, n)

    def sample_one(self, rng: np.random.Generator, origin: int) -> int:
        return int(self.sample(rng, origin, 1)[0])
