"""Scenario self-checks: invariants the generated trace must satisfy.

The traffic generator has many moving parts; this module makes its
contract explicit and machine-checkable. :func:`validate_scenario`
returns a list of violations (empty = healthy) so tests, notebooks,
and CI can assert generator health without duplicating the rules:

* every flow's ingress member is an IXP member;
* timestamps lie inside the measurement window;
* packet and byte counters are positive and size-consistent;
* ground-truth label populations match their defining properties
  (NAT strays have bogon sources, triggers carry planned victim
  addresses, router strays come from the member's own interfaces...);
* every planned attack with enough volume left a trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.bogons import bogon_prefix_set
from repro.ixp.flows import TruthLabel
from repro.ixp.model import IXP
from repro.topology.model import ASTopology
from repro.traffic.scenario import TrafficScenario
from repro.traffic.stray import member_router_addresses


@dataclass(slots=True, frozen=True)
class Violation:
    """One broken invariant."""

    rule: str
    detail: str

    def __str__(self) -> str:
        return f"{self.rule}: {self.detail}"


def validate_scenario(
    scenario: TrafficScenario,
    ixp: IXP,
    topo: ASTopology,
) -> list[Violation]:
    """Check every generator invariant; returns violations found."""
    violations: list[Violation] = []
    flows = scenario.flows
    window = scenario.config.window_seconds

    members = set(ixp.member_asns)
    flow_members = {int(m) for m in np.unique(flows.member)}
    strangers = flow_members - members
    if strangers:
        violations.append(
            Violation("ingress-membership",
                      f"non-member ingress ASNs: {sorted(strangers)[:5]}")
        )

    if len(flows) and (int(flows.time.min()) < 0 or int(flows.time.max()) >= window):
        violations.append(
            Violation(
                "time-window",
                f"times outside [0, {window}): "
                f"[{int(flows.time.min())}, {int(flows.time.max())}]",
            )
        )

    if len(flows) and not (flows.packets > 0).all():
        violations.append(Violation("counters", "non-positive packet counts"))
    if len(flows):
        sizes = flows.bytes / np.maximum(flows.packets, 1)
        bad = int(((sizes < 28) | (sizes > 1500)).sum())
        if bad:
            violations.append(
                Violation("packet-sizes", f"{bad} flows outside 28..1500 B")
            )

    violations.extend(_check_truth_populations(scenario, topo))
    violations.extend(_check_plan_coverage(scenario))
    return violations


def _check_truth_populations(
    scenario: TrafficScenario, topo: ASTopology
) -> list[Violation]:
    violations: list[Violation] = []
    flows = scenario.flows
    bogons = bogon_prefix_set()

    nat = flows.select(flows.truth == int(TruthLabel.STRAY_NAT))
    if len(nat) and not bogons.contains_many(nat.src).all():
        violations.append(
            Violation("nat-sources", "NAT stray with non-bogon source")
        )

    legit = flows.select(flows.truth == int(TruthLabel.LEGIT))
    if len(legit) and bogons.contains_many(legit.src).any():
        violations.append(
            Violation("legit-sources", "legit flow with bogon source")
        )

    routers = flows.select(flows.truth == int(TruthLabel.STRAY_ROUTER))
    if len(routers):
        for member in np.unique(routers.member):
            allowed = set(member_router_addresses(topo, int(member)))
            seen = {
                int(s)
                for s in np.unique(routers.src[routers.member == member])
            }
            if not seen <= allowed:
                violations.append(
                    Violation(
                        "router-sources",
                        f"AS{int(member)} stray from non-interface address",
                    )
                )
                break

    triggers = flows.select(flows.truth == int(TruthLabel.SPOOF_TRIGGER))
    if len(triggers):
        planned_victims = {
            event.victim_addr for event in scenario.plan.amplifications
        }
        seen_victims = {int(s) for s in np.unique(triggers.src)}
        if not seen_victims <= planned_victims:
            violations.append(
                Violation("trigger-victims", "trigger with unplanned victim")
            )
        if not (triggers.dst_port == 123).all():
            violations.append(
                Violation("trigger-ports", "NTP trigger not on port 123")
            )
    return violations


def _check_plan_coverage(scenario: TrafficScenario) -> list[Violation]:
    violations: list[Violation] = []
    flows = scenario.flows
    flood_dsts = {
        int(d)
        for d in np.unique(
            flows.dst[
                np.isin(
                    flows.truth,
                    (int(TruthLabel.SPOOF_FLOOD), int(TruthLabel.SPOOF_GAMING)),
                )
            ]
        )
    }
    for event in scenario.plan.floods:
        if event.sampled_packets >= 5 and event.victim_addr not in flood_dsts:
            violations.append(
                Violation(
                    "plan-coverage",
                    f"flood on {event.victim_addr} left no flows",
                )
            )
            break
    trigger_srcs = {
        int(s)
        for s in np.unique(
            flows.src[flows.truth == int(TruthLabel.SPOOF_TRIGGER)]
        )
    }
    for event in scenario.plan.amplifications:
        if event.sampled_packets >= 5 and event.victim_addr not in trigger_srcs:
            violations.append(
                Violation(
                    "plan-coverage",
                    f"amplification on {event.victim_addr} left no flows",
                )
            )
            break
    return violations
