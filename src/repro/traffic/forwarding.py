"""Ground-truth source pools: what each member may legitimately forward.

A member injects traffic into the IXP fabric on behalf of a set of
origin networks. That set is a property of the *real* topology, not of
what BGP exposes — the difference between the two is precisely what
creates the paper's false-positive populations. Pool entry kinds:

==================  ========================================================
OWN                 the member's own prefixes
CUSTOMER            transitive customers (ground truth, incl. via siblings)
SIBLING             same-organization ASes (link may be invisible in BGP)
PEER_TRANSIT        peers whose cone the member carries (hybrid peerings)
PA_SPACE            provider-assigned space used across providers
TUNNEL              traffic hauled over BGP-invisible tunnels
==================  ========================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.net.prefix import Prefix
from repro.topology.model import ASTopology


class SourceKind(enum.Enum):
    OWN = "own"
    CUSTOMER = "customer"
    SIBLING = "sibling"
    PEER_TRANSIT = "peer_transit"
    PA_SPACE = "pa_space"
    TUNNEL = "tunnel"
    BACKUP_TRANSIT = "backup_transit"

    @property
    def bgp_invisible(self) -> bool:
        """True for arrangements no BGP-derived cone can learn about.

        ``SIBLING`` is only partially invisible (some sibling links are
        announced); the pool builder tags the truly hidden ones with
        ``hidden=True`` on the entry instead.
        """
        return self in (
            SourceKind.PA_SPACE,
            SourceKind.TUNNEL,
            SourceKind.BACKUP_TRANSIT,
        )


@dataclass(slots=True, frozen=True)
class SourceEntry:
    """One legitimate source population for a member."""

    origin: int  # AS that genuinely operates the source hosts
    prefixes: tuple[Prefix, ...]
    kind: SourceKind
    weight: float
    #: True when the arrangement leaves no trace in BGP at all —
    #: these flows are the Section 4.4 false-positive population.
    hidden: bool = False


@dataclass(slots=True)
class SourcePool:
    """All legitimate source populations of one member."""

    member: int
    entries: list[SourceEntry]

    def total_weight(self) -> float:
        return sum(entry.weight for entry in self.entries)

    def visible_entries(self) -> list[SourceEntry]:
        return [e for e in self.entries if not e.hidden]

    def hidden_entries(self) -> list[SourceEntry]:
        return [e for e in self.entries if e.hidden]


def customer_egress_shares(
    topo: ASTopology,
    asn: int,
    primary_provider: int | None,
    asymmetric: bool,
    primary_share: float = 0.85,
    asymmetric_primary_share: float = 0.25,
) -> dict[int, float]:
    """How an AS splits its egress traffic across its providers.

    Ordinarily, egress follows the announcements: the primary provider
    carries most traffic (``primary_share``). ASes running asymmetric
    setups (selective announcement towards the primary) send *most*
    egress via the other providers — the traffic/announcement mismatch
    at the heart of the Naive approach's false positives.
    """
    providers = sorted(topo.node(asn).providers)
    if not providers:
        return {}
    if primary_provider is None or primary_provider not in providers:
        primary_provider = providers[0]
    if len(providers) == 1:
        return {providers[0]: 1.0}
    top = asymmetric_primary_share if asymmetric else primary_share
    rest = (1.0 - top) / (len(providers) - 1)
    return {
        provider: (top if provider == primary_provider else rest)
        for provider in providers
    }


def build_source_pools(
    topo: ASTopology,
    members: list[int],
    transit_members: set[int],
    customer_weight: float = 0.8,
    peer_weight: float = 0.03,
    sibling_visible_weight: float = 0.4,
    sibling_hidden_weight: float = 0.06,
    pa_weight: float = 0.12,
    tunnel_weight: float = 3.0,
    backup_weight: float = 0.12,
    primary_providers: dict[int, int] | None = None,
    asymmetric_asns: set[int] | None = None,
) -> dict[int, SourcePool]:
    """Construct the ground-truth source pool of every member.

    ``transit_members`` — members that carry transit across the fabric:
    they legitimately forward traffic sourced in their peers' customer
    cones towards their own IXP-side customers (Figure 1c's scenario —
    valid for the Full Cone where the peering is path-visible, Invalid
    for the Customer Cone by design). The tunnel weight defaults high
    so that the occasional carrier member is *dominated* by tunnel
    traffic, reproducing the near-100% Invalid outliers of Figure 4.

    ``primary_providers`` and ``asymmetric_asns`` (from the
    announcement policies) drive per-customer egress shares: a member
    sees a customer's traffic in proportion to how much of that
    customer's egress actually flows through it.
    """
    primary_providers = primary_providers or {}
    asymmetric_asns = asymmetric_asns or set()
    pools: dict[int, SourcePool] = {}
    pa_by_customer: dict[int, list[tuple[int, Prefix]]] = {}
    for customer, provider, prefix in topo.pa_assignments:
        pa_by_customer.setdefault(customer, []).append((provider, prefix))
    egress_cache: dict[int, dict[int, float]] = {}

    def egress_of(asn: int) -> dict[int, float]:
        shares = egress_cache.get(asn)
        if shares is None:
            shares = customer_egress_shares(
                topo, asn, primary_providers.get(asn), asn in asymmetric_asns
            )
            egress_cache[asn] = shares
        return shares

    for member in members:
        entries: list[SourceEntry] = []
        node = topo.node(member)
        if node.prefixes:
            entries.append(
                SourceEntry(member, tuple(node.prefixes), SourceKind.OWN, 1.0)
            )
        # Transitive customers (ground truth), weighted by how much of
        # the customer's egress actually reaches this member.
        member_cone = topo.customer_cone(member)
        for asn in sorted(member_cone - {member}):
            prefixes = topo.node(asn).prefixes
            if not prefixes:
                continue
            shares = egress_of(asn)
            reach_share = sum(
                share
                for provider, share in shares.items()
                if provider == member or provider in member_cone
            )
            if reach_share <= 0:
                continue
            entries.append(
                SourceEntry(
                    asn,
                    tuple(prefixes),
                    SourceKind.CUSTOMER,
                    customer_weight * reach_share,
                )
            )
        # Organization siblings and their cones.
        for sibling in sorted(topo.org_siblings(member) - {member}):
            link_visible = topo.relationship(member, sibling) is not None
            for asn in sorted(topo.customer_cone(sibling)):
                prefixes = topo.node(asn).prefixes
                if prefixes:
                    entries.append(
                        SourceEntry(
                            asn,
                            tuple(prefixes),
                            SourceKind.SIBLING,
                            sibling_visible_weight
                            if link_visible
                            else sibling_hidden_weight,
                            hidden=not link_visible,
                        )
                    )
        # Peer cones: transit members haul peer-sourced traffic towards
        # their IXP-side customers; a few hybrid "partial transit"
        # peerings do the same for members not otherwise transiting.
        peer_sources: set[int] = set()
        if member in transit_members:
            peer_sources.update(node.peers)
        for carrier, peer in topo.partial_transit:
            if carrier == member:
                peer_sources.add(peer)
        for peer in sorted(peer_sources):
            for asn in sorted(topo.customer_cone(peer)):
                prefixes = topo.node(asn).prefixes
                if prefixes:
                    entries.append(
                        SourceEntry(
                            asn,
                            tuple(prefixes),
                            SourceKind.PEER_TRANSIT,
                            peer_weight,
                        )
                    )
        # Provider-assigned space used across the member's other links.
        for provider, prefix in pa_by_customer.get(member, ()):
            entries.append(
                SourceEntry(
                    provider,
                    (prefix,),
                    SourceKind.PA_SPACE,
                    pa_weight,
                    hidden=True,
                )
            )
        # Backup transit: the member is a silent backup provider and
        # occasionally carries the backup customer's cone.
        for provider, customer in sorted(topo.backup_transit):
            if provider != member:
                continue
            for asn in sorted(topo.customer_cone(customer)):
                prefixes = topo.node(asn).prefixes
                if prefixes:
                    entries.append(
                        SourceEntry(
                            asn,
                            tuple(prefixes),
                            SourceKind.BACKUP_TRANSIT,
                            backup_weight,
                            hidden=True,
                        )
                    )
        # Tunnel arrangements where the member is the carrier.
        for carrier, origin in sorted(topo.tunnels):
            if carrier != member:
                continue
            prefixes = topo.node(origin).prefixes
            if prefixes:
                entries.append(
                    SourceEntry(
                        origin,
                        tuple(prefixes),
                        SourceKind.TUNNEL,
                        tunnel_weight,
                        hidden=True,
                    )
                )
        pools[member] = SourcePool(member, entries)
    return pools
