"""Application and packet-size models for regular traffic.

Port and size distributions follow the paper's observations (Figures
8a and 9): regular traffic has a bimodal packet-size distribution
(small ACKs, large data packets) and is dominated by HTTP(S) on TCP,
with BitTorrent-style random ports dominating UDP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ixp.flows import PROTO_TCP, PROTO_UDP

#: Well-known ports surfaced in Figure 9.
PORT_HTTP = 80
PORT_HTTPS = 443
PORT_NTP = 123
PORT_STEAM = 27015
PORT_DNS = 53


@dataclass(slots=True)
class AppFlowSpec:
    """Template for one regular flow drawn from the application mix."""

    proto: int
    src_port: int
    dst_port: int
    mean_packet_size: float
    #: Mean number of *sampled* packets per flow row.
    mean_sampled_packets: float


def ephemeral_port(rng: np.random.Generator) -> int:
    """A random ephemeral port (49152–65535)."""
    return int(rng.integers(49152, 65536))


def draw_regular_app(rng: np.random.Generator) -> AppFlowSpec:
    """Draw one regular-traffic flow template.

    The mixture covers both directions of client/server protocols:
    server→client rows carry the service port in SRC, client→server
    rows in DST, reproducing the direction split of Figure 9.
    """
    roll = rng.random()
    if roll < 0.30:  # HTTP(S) server → client: large data packets
        service = PORT_HTTPS if rng.random() < 0.62 else PORT_HTTP
        return AppFlowSpec(
            proto=PROTO_TCP,
            src_port=service,
            dst_port=ephemeral_port(rng),
            mean_packet_size=float(rng.normal(1380, 80)),
            mean_sampled_packets=4.0,
        )
    if roll < 0.55:  # HTTP(S) client → server: small ACK/request packets
        service = PORT_HTTPS if rng.random() < 0.62 else PORT_HTTP
        return AppFlowSpec(
            proto=PROTO_TCP,
            src_port=ephemeral_port(rng),
            dst_port=service,
            mean_packet_size=float(rng.normal(80, 25)),
            mean_sampled_packets=2.5,
        )
    if roll < 0.70:  # other TCP (mail, ssh, CDN internals): mixed sizes
        big = rng.random() < 0.5
        return AppFlowSpec(
            proto=PROTO_TCP,
            src_port=ephemeral_port(rng),
            dst_port=int(rng.choice((25, 22, 8080, 993, 3306))),
            mean_packet_size=float(rng.normal(1300, 150)) if big else float(
                rng.normal(90, 30)
            ),
            mean_sampled_packets=2.0,
        )
    if roll < 0.92:  # BitTorrent-style UDP: random ports, mid sizes
        return AppFlowSpec(
            proto=PROTO_UDP,
            src_port=ephemeral_port(rng),
            dst_port=int(rng.integers(1024, 65536)),
            mean_packet_size=float(rng.normal(900, 300)),
            mean_sampled_packets=1.8,
        )
    if roll < 0.97:  # DNS
        query = rng.random() < 0.5
        return AppFlowSpec(
            proto=PROTO_UDP,
            src_port=ephemeral_port(rng) if query else PORT_DNS,
            dst_port=PORT_DNS if query else ephemeral_port(rng),
            mean_packet_size=float(rng.normal(120, 40)),
            mean_sampled_packets=1.2,
        )
    # Legitimate NTP chatter (keeps port 123 from being attack-only).
    query = rng.random() < 0.5
    return AppFlowSpec(
        proto=PROTO_UDP,
        src_port=ephemeral_port(rng) if query else PORT_NTP,
        dst_port=PORT_NTP if query else ephemeral_port(rng),
        mean_packet_size=90.0,
        mean_sampled_packets=1.1,
    )


def clamp_packet_size(size: float) -> int:
    """Clamp a drawn packet size to valid Ethernet/IPv4 bounds."""
    return int(min(max(size, 40.0), 1500.0))
