"""Regular (legitimate) traffic generation.

Produces the bulk of the fabric's traffic: heavy-tailed per-member
volumes, diurnal timing, the Figure 9 application mix and the
Figure 8a bimodal packet sizes. Sources are drawn from each member's
ground-truth pool, so a configurable sliver of perfectly legitimate
traffic rides over BGP-invisible arrangements — the population the
Full Cone misclassifies and Section 4.4 recovers via WHOIS.
"""

from __future__ import annotations

import numpy as np

from repro.ixp.flows import (
    PROTO_TCP,
    PROTO_UDP,
    FlowTable,
    TruthLabel,
)
from repro.ixp.model import IXP
from repro.traffic.apps import PORT_DNS, PORT_HTTP, PORT_HTTPS, PORT_NTP
from repro.traffic.diurnal import DiurnalModel
from repro.traffic.forwarding import SourcePool
from repro.traffic.poolsampler import PoolAddressSampler

#: Regular application mixture: (share, proto, src_kind, dst_kind,
#: mean_size, size_sd, mean_sampled_pkts). Port kinds: "eph" (random
#: ephemeral), "rand" (any port), an int (fixed), or a tuple of ints
#: (drawn uniformly).
_APP_MIX = (
    (0.30, PROTO_TCP, (PORT_HTTP, PORT_HTTPS), "eph", 1380.0, 80.0, 4.0),
    (0.25, PROTO_TCP, "eph", (PORT_HTTP, PORT_HTTPS), 80.0, 25.0, 2.5),
    (0.08, PROTO_TCP, "eph", (25, 22, 8080, 993, 3306), 1200.0, 250.0, 2.0),
    (0.07, PROTO_TCP, (25, 22, 8080, 993, 3306), "eph", 110.0, 35.0, 2.0),
    (0.22, PROTO_UDP, "rand", "rand", 900.0, 300.0, 1.8),
    (0.03, PROTO_UDP, "eph", PORT_DNS, 90.0, 20.0, 1.2),
    (0.02, PROTO_UDP, PORT_DNS, "eph", 160.0, 60.0, 1.2),
    (0.015, PROTO_UDP, "eph", PORT_NTP, 90.0, 5.0, 1.1),
    (0.015, PROTO_UDP, PORT_NTP, "eph", 90.0, 5.0, 1.1),
)


def _draw_ports(rng: np.random.Generator, kind, n: int) -> np.ndarray:
    if kind == "eph":
        return rng.integers(49152, 65536, size=n, dtype=np.uint32)
    if kind == "rand":
        return rng.integers(1024, 65536, size=n, dtype=np.uint32)
    if isinstance(kind, tuple):
        return rng.choice(np.array(kind, dtype=np.uint32), size=n)
    return np.full(n, kind, dtype=np.uint32)


def draw_app_columns(
    rng: np.random.Generator, n: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised application mixture draw.

    Returns (proto, src_port, dst_port, packets, bytes) arrays.
    """
    shares = np.array([row[0] for row in _APP_MIX])
    shares = shares / shares.sum()
    picks = rng.choice(len(_APP_MIX), size=n, p=shares)
    proto = np.empty(n, dtype=np.uint8)
    src_port = np.empty(n, dtype=np.uint32)
    dst_port = np.empty(n, dtype=np.uint32)
    packets = np.empty(n, dtype=np.int64)
    sizes = np.empty(n, dtype=np.float64)
    for index, (_, app_proto, src_kind, dst_kind, mean, sd, mean_pkts) in enumerate(
        _APP_MIX
    ):
        mask = picks == index
        count = int(mask.sum())
        if not count:
            continue
        proto[mask] = app_proto
        src_port[mask] = _draw_ports(rng, src_kind, count)
        dst_port[mask] = _draw_ports(rng, dst_kind, count)
        packets[mask] = 1 + rng.poisson(mean_pkts - 1, size=count)
        sizes[mask] = rng.normal(mean, sd, size=count)
    sizes = np.clip(sizes, 40.0, 1500.0)
    nbytes = (packets * sizes).astype(np.int64)
    return proto, src_port, dst_port, packets, nbytes


def member_flow_counts(
    rng: np.random.Generator, ixp: IXP, total_rows: int
) -> dict[int, int]:
    """Split ``total_rows`` across members by traffic weight."""
    asns = list(ixp.member_asns)
    weights = ixp.traffic_weights()
    probs = weights / weights.sum()
    counts = rng.multinomial(total_rows, probs)
    return {asn: int(count) for asn, count in zip(asns, counts) if count}


def generate_regular(
    rng: np.random.Generator,
    ixp: IXP,
    pools: dict[int, SourcePool],
    diurnal: DiurnalModel,
    total_rows: int,
    pool_sampler: PoolAddressSampler | None = None,
) -> FlowTable:
    """Generate ``total_rows`` sampled regular flows across all members."""
    pool_sampler = pool_sampler or PoolAddressSampler()
    counts = member_flow_counts(rng, ixp, total_rows)
    member_list = list(ixp.member_asns)
    weight_vector = ixp.traffic_weights()
    tables: list[FlowTable] = []
    for member, n in counts.items():
        pool = pools.get(member)
        if pool is None or not pool.entries:
            continue
        src, origins, hidden = pool_sampler.sample(rng, pool, n)
        dst, dst_member = _draw_destinations(
            rng, member, member_list, weight_vector, pools, pool_sampler, n
        )
        proto, src_port, dst_port, packets, nbytes = draw_app_columns(rng, n)
        truth = np.where(
            hidden,
            int(TruthLabel.LEGIT_HIDDEN_REL),
            int(TruthLabel.LEGIT),
        ).astype(np.uint8)
        tables.append(
            FlowTable(
                src=src,
                dst=dst,
                proto=proto,
                src_port=src_port,
                dst_port=dst_port,
                packets=packets,
                bytes=nbytes,
                member=np.full(n, member, dtype=np.int64),
                dst_member=dst_member,
                time=diurnal.sample_times(rng, n),
                truth=truth,
            )
        )
    return FlowTable.concat(tables)


def _draw_destinations(
    rng: np.random.Generator,
    member: int,
    member_list: list[int],
    weights: np.ndarray,
    pools: dict[int, SourcePool],
    pool_sampler: PoolAddressSampler,
    n: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Destination member (weighted, != ingress) and an address inside
    that member's visible pool."""
    probs = weights.copy()
    self_index = member_list.index(member)
    probs[self_index] = 0.0
    probs = probs / probs.sum()
    picks = rng.choice(len(member_list), size=n, p=probs)
    dst = np.empty(n, dtype=np.uint64)
    dst_member = np.empty(n, dtype=np.int64)
    for index in np.unique(picks):
        mask = picks == index
        count = int(mask.sum())
        target = member_list[index]
        dst_member[mask] = target
        pool = pools.get(target)
        if pool is None or not pool.entries:
            dst[mask] = rng.integers(1 << 24, 223 << 24, size=count, dtype=np.uint64)
            continue
        addrs, _origins, _hidden = pool_sampler.sample(
            rng, pool, count, visible_only=True
        )
        dst[mask] = addrs
    return dst, dst_member
