"""Synthetic inter-domain traffic generation.

Replaces the paper's four weeks of real IXP traffic. The generator
produces sampled flow records for every traffic population the paper
encounters:

* regular traffic (bimodal packet sizes, diurnal pattern, realistic
  application/port mix),
* legitimate traffic over BGP-invisible arrangements (hidden org
  links, provider-assigned space, tunnels, partial-transit peerings) —
  the false-positive populations of Section 4.4,
* stray traffic: NAT leakage with private sources and
  router-originated ICMP from transit-link interfaces (Section 5.2),
* attacks: randomly spoofed SYN/gaming floods and selectively spoofed
  NTP amplification with visible amplifier responses (Section 7).

Every flow carries a ground-truth label so detector quality can be
evaluated — something the paper's real traces could not offer.
"""

from repro.traffic.scenario import ScenarioConfig, TrafficScenario, generate_traffic

__all__ = ["ScenarioConfig", "TrafficScenario", "generate_traffic"]
