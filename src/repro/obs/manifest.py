"""Run manifests: one JSON file tying an output to its exact run.

A :class:`RunManifest` records everything needed to reproduce — or
audit — the run that produced an artefact: the command and arguments,
world seed/preset/config, SHA-256 digests of every input file, the
repository git SHA, interpreter and numpy versions, wall-clock per
pipeline stage, the span ledger, a metrics snapshot, and the outcome
(exit code, completeness). The CLI, the experiment runner and the
benchmark harness write one next to every output they produce, so a
number in ``benchmarks/output/`` is never orphaned from the run that
generated it (the HAW reproducibility study of this paper found
exactly that gap to be the main obstacle to reproduction).

The manifest is a thin wrapper over a plain dict: ``write`` →
``load`` → :meth:`to_dict` round-trips bit-identically (asserted in
``tests/test_obs.py``, including under spawn workers). ``repro trace
show <manifest>`` renders it back as a stage/span report.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import platform
import subprocess
import sys
import time
from typing import Any, Iterable

#: Manifest schema identifier; bump on breaking field changes.
SCHEMA = "repro.run_manifest/1"


def file_digest(path: str | pathlib.Path) -> dict[str, Any]:
    """SHA-256 digest record of one input file (path, bytes, sha256)."""
    path = pathlib.Path(path)
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as handle:
        while chunk := handle.read(1 << 20):
            digest.update(chunk)
            size += len(chunk)
    return {
        "path": str(path),
        "bytes": size,
        "sha256": digest.hexdigest(),
    }


def current_git_sha(
    cwd: str | pathlib.Path | None = None,
) -> str | None:
    """The repository HEAD SHA, or ``None`` outside a work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


class RunManifest:
    """A recorded run: environment, inputs, timings, metrics, outcome."""

    def __init__(self, data: dict[str, Any]) -> None:
        self.data = data

    # -- construction ------------------------------------------------------

    @classmethod
    def create(
        cls,
        command: str,
        *,
        argv: list[str] | None = None,
        seed: int | None = None,
        preset: str | None = None,
        config: dict[str, Any] | None = None,
    ) -> "RunManifest":
        """Open a manifest for a run that is starting now.

        Captures the invocation (``command``, ``argv``), the world
        parameters (``seed``, ``preset``, ``config``) and the
        environment (git SHA, python/numpy versions, platform, pid).
        Finish it with :meth:`finish` before :meth:`write`.
        """
        try:
            import numpy

            numpy_version = numpy.__version__
        except ImportError:  # pragma: no cover - numpy is a hard dep
            numpy_version = None
        return cls(
            {
                "schema": SCHEMA,
                "command": command,
                "argv": list(argv) if argv is not None else None,
                "seed": seed,
                "preset": preset,
                "config": config,
                "started": time.strftime(
                    "%Y-%m-%dT%H:%M:%S%z", time.localtime()
                ),
                "started_unix": time.time(),
                "git_sha": current_git_sha(),
                "python": sys.version.split()[0],
                "numpy": numpy_version,
                "platform": platform.platform(),
                "hostname": platform.node(),
                "pid": None,  # filled by finish() so forked children
                # that inherit an open manifest stamp their own pid
                "inputs": {},
                "stages": {},
                "spans": [],
                "metrics": {},
                "outcome": None,
            }
        )

    def add_input(self, name: str, path: str | pathlib.Path) -> None:
        """Digest one input file into the manifest's ``inputs`` map."""
        self.data["inputs"][name] = file_digest(path)

    def finish(
        self,
        *,
        stats: Any = None,
        spans: Iterable[Any] | None = None,
        metrics: Any = None,
        exit_code: int = 0,
        complete: bool = True,
        extra: dict[str, Any] | None = None,
    ) -> "RunManifest":
        """Seal the manifest with the run's results; returns self.

        ``stats`` is a :class:`repro.core.stats.PipelineStats` (its
        stage table becomes ``stages``), ``spans`` an iterable of
        :class:`repro.obs.trace.SpanRecord`, ``metrics`` a
        :class:`repro.obs.metrics.MetricsRegistry`.
        """
        import os

        now = time.time()
        self.data["finished"] = time.strftime(
            "%Y-%m-%dT%H:%M:%S%z", time.localtime()
        )
        self.data["duration_seconds"] = now - self.data["started_unix"]
        self.data["pid"] = os.getpid()
        if stats is not None:
            self.data["stages"] = {
                stage.name: {"seconds": stage.seconds, "rows": stage.rows}
                for stage in stats.stages.values()
            }
            self.data["n_flows"] = stats.n_flows
            self.data["n_chunks"] = stats.n_chunks
            self.data["rows_dropped"] = stats.rows_dropped
            self.data["invalid_counts"] = dict(stats.invalid_counts)
        if spans is not None:
            self.data["spans"] = [
                span if isinstance(span, dict) else span.to_dict()
                for span in spans
            ]
        if metrics is not None:
            self.data["metrics"] = metrics.snapshot()
        self.data["outcome"] = {"exit_code": exit_code, "complete": complete}
        if extra:
            self.data.update(extra)
        return self

    # -- round trip --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The manifest as a plain (JSON-serialisable) dict."""
        return self.data

    def write(self, path: str | pathlib.Path) -> pathlib.Path:
        """Serialise to ``path`` as indented JSON; returns the path.

        The write is atomic (write-tmp-fsync-rename): a run killed by
        SIGTERM/SIGKILL mid-write never leaves a truncated manifest
        under the final name — readers see the previous complete
        manifest or the new complete one, nothing in between.
        """
        from repro.util.atomicio import atomic_write_text

        path = pathlib.Path(path)
        atomic_write_text(
            path, json.dumps(self.data, indent=2, sort_keys=True) + "\n"
        )
        return path

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "RunManifest":
        """Read a manifest written by :meth:`write`."""
        data = json.loads(pathlib.Path(path).read_text())
        if data.get("schema") != SCHEMA:
            raise ValueError(
                f"{path}: not a {SCHEMA} manifest "
                f"(schema={data.get('schema')!r})"
            )
        return cls(data)

    # -- reporting ---------------------------------------------------------

    def render(self) -> str:
        """Human-readable report (the ``repro trace show`` output)."""
        from repro.obs.trace import render_spans

        data = self.data
        outcome = data.get("outcome") or {}
        lines = [
            f"run manifest: {data.get('command')} "
            f"(schema {data.get('schema')})",
            f"  started   {data.get('started')}  "
            f"duration {data.get('duration_seconds', 0.0):.3f}s",
            f"  git       {data.get('git_sha') or 'unknown'}",
            f"  python    {data.get('python')}  numpy {data.get('numpy')}",
            f"  seed      {data.get('seed')}  preset {data.get('preset')}",
            f"  outcome   exit={outcome.get('exit_code')} "
            f"complete={outcome.get('complete')}",
        ]
        if data.get("inputs"):
            lines.append("  inputs:")
            for name, record in data["inputs"].items():
                lines.append(
                    f"    {name}: {record['path']} "
                    f"({record['bytes']} bytes, "
                    f"sha256 {record['sha256'][:12]}…)"
                )
        if data.get("stages"):
            lines.append("  stages:")
            for name, stage in data["stages"].items():
                seconds = stage["seconds"]
                rows = stage["rows"]
                rate = rows / seconds if seconds > 0 else float("inf")
                lines.append(
                    f"    {name:<20} {rows:>12} rows "
                    f"{seconds:>10.4f}s {rate:>14.0f} rows/s"
                )
        if data.get("spans"):
            lines.append("  spans:")
            lines.append(render_spans(data["spans"]))
        if data.get("metrics"):
            lines.append("  metrics:")
            for name, record in sorted(data["metrics"].items()):
                kind = record.get("kind")
                if kind == "histogram":
                    lines.append(
                        f"    {name:<28} histogram n={record['count']} "
                        f"mean={record['mean']:.4f} p50={record['p50']:.4f} "
                        f"p99={record['p99']:.4f}"
                    )
                else:
                    lines.append(
                        f"    {name:<28} {kind} value={record['value']}"
                    )
        return "\n".join(lines)


def manifest_path_for(output: str | pathlib.Path) -> pathlib.Path:
    """The conventional manifest path next to an output file.

    ``benchmarks/output/table1.txt`` → ``…/table1.manifest.json``;
    an extensionless output gets ``.manifest.json`` appended.
    """
    output = pathlib.Path(output)
    return output.with_suffix(".manifest.json")
