"""Nestable tracing spans that survive process boundaries.

The tracer is the timing backbone of the observability layer: every
instrumented region (``with trace("classify.invalid[full]", rows=n):``)
produces one :class:`SpanRecord` — a small, picklable dataclass — in
the ambient :class:`Tracer`. Records, not live objects, are the unit
of exchange: a fork/spawn pool worker accumulates the records of its
chunk, ships them back inside the chunk summary, and the supervisor
merges them, so a streamed parallel run yields the same span ledger a
single-shot run would.

Tracing is **disabled by default** and the disabled path is a single
attribute check — cheap enough to leave the instrumentation compiled
into every hot loop (the ``perf_trace_overhead`` benchmark holds it
under 2% on a 4M-row classification).

The legacy :class:`repro.core.stats.PipelineStats` stage timings are
re-exported on top of this layer: :class:`repro.core.stats.StageClock`
measures each stage once and feeds the *same* elapsed value to both
the stats record and the ambient tracer, so ``span_totals()`` over a
run's spans agrees with the stage table exactly (asserted in
``tests/test_obs.py``).
"""

from __future__ import annotations

import time
from contextlib import AbstractContextManager, contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator


@dataclass(slots=True)
class SpanRecord:
    """One completed span: a named, timed region of the pipeline.

    ``start`` is wall-clock epoch seconds (comparable across worker
    processes); ``seconds`` is the monotonic-clock duration. ``rows``
    is the row count the region processed (0 when not applicable),
    ``parent`` the name of the enclosing span at completion time, and
    ``attrs`` any extra key/value context. Records are picklable and
    JSON-friendly via :meth:`to_dict`.
    """

    name: str
    seconds: float
    rows: int = 0
    start: float = 0.0
    parent: str | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping (the manifest's ``spans`` entries)."""
        out: dict[str, Any] = {
            "name": self.name,
            "seconds": self.seconds,
            "rows": self.rows,
            "start": self.start,
            "parent": self.parent,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SpanRecord":
        """Rebuild a record parsed back from a manifest."""
        return cls(
            name=data["name"],
            seconds=float(data["seconds"]),
            rows=int(data.get("rows", 0)),
            start=float(data.get("start", 0.0)),
            parent=data.get("parent"),
            attrs=dict(data.get("attrs", {})),
        )


@dataclass(slots=True)
class SpanTotal:
    """Aggregate of every span sharing one name (see :func:`span_totals`)."""

    name: str
    calls: int = 0
    seconds: float = 0.0
    rows: int = 0

    @property
    def rows_per_sec(self) -> float:
        """Throughput over the accumulated time (inf for 0-second spans)."""
        if self.seconds <= 0.0:
            return float("inf") if self.rows else 0.0
        return self.rows / self.seconds


class Tracer:
    """Collects :class:`SpanRecord` s with explicit nesting.

    A tracer is either enabled (spans are recorded) or disabled (every
    entry point is a no-op behind one attribute check). The module
    keeps one ambient tracer (:func:`current_tracer`) that all library
    instrumentation uses; worker processes inherit its enabled flag by
    fork or are told it through the pool initializer.
    """

    __slots__ = ("enabled", "records", "_stack")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.records: list[SpanRecord] = []
        self._stack: list[str] = []

    @contextmanager
    def span(
        self, name: str, *, rows: int = 0, **attrs: object
    ) -> Iterator[None]:
        """Open a nested span; the record is appended on exit."""
        if not self.enabled:
            yield
            return
        parent = self._stack[-1] if self._stack else None
        self._stack.append(name)
        start_wall = time.time()
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._stack.pop()
            self.records.append(
                SpanRecord(
                    name=name,
                    seconds=elapsed,
                    rows=rows,
                    start=start_wall,
                    parent=parent,
                    attrs=attrs,
                )
            )

    def record(
        self, name: str, seconds: float, *, rows: int = 0, **attrs: object
    ) -> None:
        """Append an already-measured span (no nesting side effects).

        This is the seam :class:`repro.core.stats.StageClock` uses to
        feed the tracer the *same* elapsed value it put into
        :class:`~repro.core.stats.PipelineStats`, keeping the two
        ledgers numerically identical.
        """
        if not self.enabled:
            return
        parent = self._stack[-1] if self._stack else None
        self.records.append(
            SpanRecord(
                name=name,
                seconds=seconds,
                rows=rows,
                start=time.time() - seconds,
                parent=parent,
                attrs=attrs,
            )
        )

    def drain(self) -> list[SpanRecord]:
        """Return and clear every completed record."""
        records, self.records = self.records, []
        return records

    @contextmanager
    def capture(self) -> Iterator[list[SpanRecord]]:
        """Collect the records completed inside the block.

        Yields a list that is populated (and the records removed from
        the tracer) when the block exits — the supervisor uses this to
        attach the spans of an in-process chunk to that chunk's
        summary without disturbing its own open spans.
        """
        mark = len(self.records)
        captured: list[SpanRecord] = []
        try:
            yield captured
        finally:
            captured.extend(self.records[mark:])
            del self.records[mark:]


#: The process-wide ambient tracer. Fork workers inherit it (and its
#: enabled flag) copy-on-write; spawn workers are configured through
#: the pool initializer (see ``repro.core.classifier._stream_init``).
_TRACER = Tracer(enabled=False)


def current_tracer() -> Tracer:
    """The ambient tracer instrumentation records into."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the ambient tracer; returns the previous one (tests)."""
    global _TRACER
    previous, _TRACER = _TRACER, tracer
    return previous


def enable_tracing(enabled: bool = True) -> None:
    """Turn the ambient tracer on (or off with ``enabled=False``)."""
    _TRACER.enabled = enabled


def tracing_enabled() -> bool:
    """Whether the ambient tracer is currently recording."""
    return _TRACER.enabled


def trace(
    name: str, *, rows: int = 0, **attrs: object
) -> AbstractContextManager[None]:
    """``with trace("classify.invalid", rows=n):`` on the ambient tracer."""
    return _TRACER.span(name, rows=rows, **attrs)


def span_totals(
    records: Iterable[SpanRecord | dict],
) -> dict[str, SpanTotal]:
    """Aggregate records by name into calls/seconds/rows totals.

    Accepts live :class:`SpanRecord` s or their ``to_dict`` mappings
    (as read back from a manifest), preserving first-seen order.
    """
    totals: dict[str, SpanTotal] = {}
    for record in records:
        if isinstance(record, dict):
            record = SpanRecord.from_dict(record)
        total = totals.get(record.name)
        if total is None:
            total = totals[record.name] = SpanTotal(record.name)
        total.calls += 1
        total.seconds += record.seconds
        total.rows += record.rows
    return totals


def render_spans(records: Iterable[SpanRecord | dict]) -> str:
    """Plain-text span-total table (``repro trace show``)."""
    totals = span_totals(records)
    if not totals:
        return "no spans recorded"
    lines = [
        f"  {'span':<28} {'calls':>6} {'rows':>12} {'seconds':>10} "
        f"{'rows/sec':>12}"
    ]
    for total in totals.values():
        rate = total.rows_per_sec
        rate_text = f"{rate:12.0f}" if rate != float("inf") else f"{'inf':>12}"
        lines.append(
            f"  {total.name:<28} {total.calls:>6} {total.rows:>12} "
            f"{total.seconds:>10.4f} {rate_text}"
        )
    return "\n".join(lines)
