"""Counters, gauges and histograms with JSON-lines export.

One :class:`MetricsRegistry` per process collects the run-level
numbers the span ledger does not carry: rows classified per traffic
class, chunk retries, quarantined ingest lines, peak RSS, per-chunk
latency percentiles. Instruments are created on first use
(``registry.counter("stream.rows").inc(n)``), are cheap enough for
always-on recording at chunk granularity, and export as one JSON
object per line so ``jq``/spreadsheet tooling can consume a run
without a parser.

The module keeps an ambient registry (:func:`current_metrics`) used by
library instrumentation; the CLI's ``--metrics-out`` drains it to a
``.jsonl`` file next to the run manifest.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Iterator, TypeVar, cast

_InstrumentT = TypeVar("_InstrumentT", bound="Counter | Gauge | Histogram")


class Counter:
    """A monotonically increasing count (retries, quarantined rows)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += int(amount)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready export record."""
        return {"name": self.name, "kind": "counter", "value": self.value}


class Gauge:
    """A point-in-time value that tracks its maximum (peak RSS)."""

    __slots__ = ("name", "value", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.max: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value (the running ``max`` is kept)."""
        self.value = float(value)
        if self.value > self.max:
            self.max = self.value

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready export record."""
        return {
            "name": self.name,
            "kind": "gauge",
            "value": self.value,
            "max": self.max,
        }


class Histogram:
    """A bounded-reservoir distribution (chunk latency percentiles).

    Observations are kept verbatim up to ``max_samples``; beyond that
    the reservoir is deterministically decimated (every other sample
    dropped, stride doubled) so memory stays bounded without random
    state. Percentiles are computed over the retained samples.
    """

    __slots__ = ("name", "samples", "count", "total", "_stride", "_skip",
                 "_max_samples")

    def __init__(self, name: str, max_samples: int = 4096) -> None:
        self.name = name
        self.samples: list[float] = []
        self.count = 0
        self.total = 0.0
        self._stride = 1
        self._skip = 0
        self._max_samples = max_samples

    def observe(self, value: float) -> None:
        """Record one observation (subject to reservoir decimation)."""
        self.count += 1
        self.total += value
        if self._skip:
            self._skip -= 1
            return
        self._skip = self._stride - 1
        self.samples.append(float(value))
        if len(self.samples) >= self._max_samples:
            self.samples = self.samples[::2]
            self._stride *= 2

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0–100) of the retained samples."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1.0 - frac) + ordered[high] * frac

    @property
    def mean(self) -> float:
        """Arithmetic mean over *all* observations (not the reservoir)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready export record with the standard percentiles."""
        return {
            "name": self.name,
            "kind": "histogram",
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": max(self.samples) if self.samples else 0.0,
        }


class MetricsRegistry:
    """Named instruments, created on first use, exported as JSONL."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type[_InstrumentT]) -> _InstrumentT:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = kind(name)
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return cast(_InstrumentT, instrument)

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        return self._get(name, Histogram)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Every instrument's export record, keyed by metric name."""
        return {name: inst.to_dict() for name, inst in self._instruments.items()}

    def export_jsonl(self, path: str | pathlib.Path) -> int:
        """Write one JSON object per instrument; returns the line count."""
        records = [inst.to_dict() for inst in self._instruments.values()]
        with open(path, "w") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)

    def clear(self) -> None:
        """Drop every instrument (test isolation between runs)."""
        self._instruments.clear()


#: The process-wide ambient registry library instrumentation records
#: into; drained by the CLI's ``--metrics-out``.
_REGISTRY = MetricsRegistry()


def current_metrics() -> MetricsRegistry:
    """The ambient metrics registry."""
    return _REGISTRY


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the ambient registry; returns the previous one (tests)."""
    global _REGISTRY
    previous, _REGISTRY = _REGISTRY, registry
    return previous


def peak_rss_bytes() -> int:
    """This process's peak resident set size in bytes (0 if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes, macOS bytes; normalise to bytes.
    import sys

    return int(rss) if sys.platform == "darwin" else int(rss) * 1024
