"""Unified observability: tracing spans, metrics, run manifests.

Three cooperating pieces answer "where did this run spend its time,
memory and retries — and which exact inputs produced this artefact?":

* :mod:`repro.obs.trace` — a :class:`Tracer` of nestable spans
  (``with trace("classify.invalid", rows=n):``) whose picklable
  :class:`SpanRecord` s accumulate per chunk in pool workers and merge
  on the supervisor. The legacy
  :class:`~repro.core.stats.PipelineStats` stage table is re-exported
  on top of it: both ledgers are fed the same measured values.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and histograms (rows per class, retries, quarantined lines,
  peak RSS, chunk-latency percentiles) with JSON-lines export.
* :mod:`repro.obs.manifest` — a :class:`RunManifest` capturing
  command, config, input digests, git SHA, versions, per-stage
  wall-clock, spans, metrics and outcome, written next to every
  CLI/experiment/benchmark output and rendered back by
  ``repro trace show``.

Tracing is disabled by default and costs <2% when off (benchmarked);
enable it with :func:`enable_tracing` or the CLI's ``--trace``. See
``docs/OBSERVABILITY.md`` for the full schema and a worked example.
"""

from repro.obs.manifest import (
    RunManifest,
    current_git_sha,
    file_digest,
    manifest_path_for,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_metrics,
    peak_rss_bytes,
    set_metrics,
)
from repro.obs.trace import (
    SpanRecord,
    SpanTotal,
    Tracer,
    current_tracer,
    enable_tracing,
    render_spans,
    set_tracer,
    span_totals,
    trace,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunManifest",
    "SpanRecord",
    "SpanTotal",
    "Tracer",
    "current_git_sha",
    "current_metrics",
    "current_tracer",
    "enable_tracing",
    "file_digest",
    "manifest_path_for",
    "peak_rss_bytes",
    "render_spans",
    "set_metrics",
    "set_tracer",
    "span_totals",
    "trace",
    "tracing_enabled",
]
