"""Prefix filter lists in router-style ``permit`` syntax.

The deployable form of :func:`repro.core.filterlists.build_ingress_acl`::

    ! ingress whitelist for AS64500 (full+orgs)
    ip prefix-list AS64500-in permit 192.0.2.0/24
    ip prefix-list AS64500-in permit 198.51.100.0/24

Round-trips through :class:`~repro.net.prefixset.PrefixSet`.
"""

from __future__ import annotations

import pathlib
import re

from repro.net.prefix import Prefix
from repro.net.prefixset import PrefixSet

_PERMIT = re.compile(
    r"^ip prefix-list (?P<name>\S+) permit (?P<prefix>\S+)$"
)


def write_filter_list(
    acl: PrefixSet,
    peer_asn: int,
    path: str | pathlib.Path,
    approach: str = "full+orgs",
) -> int:
    """Write a whitelist; returns the number of permit lines."""
    name = f"AS{peer_asn}-in"
    count = 0
    with open(path, "w") as handle:
        handle.write(f"! ingress whitelist for AS{peer_asn} ({approach})\n")
        for prefix in acl.prefixes():
            handle.write(f"ip prefix-list {name} permit {prefix}\n")
            count += 1
    return count


def load_filter_list(path: str | pathlib.Path) -> tuple[str, PrefixSet]:
    """Read a filter list back; returns (list name, prefix set)."""
    name: str | None = None
    prefixes: list[Prefix] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, 1):
            text = line.strip()
            if not text or text.startswith("!"):
                continue
            match = _PERMIT.match(text)
            if match is None:
                raise ValueError(f"{path}:{line_number}: unparsable line")
            if name is None:
                name = match.group("name")
            elif match.group("name") != name:
                raise ValueError(
                    f"{path}:{line_number}: mixed list names "
                    f"({name} vs {match.group('name')})"
                )
            prefixes.append(Prefix.parse(match.group("prefix")))
    if name is None:
        raise ValueError(f"{path}: no permit lines")
    return name, PrefixSet(prefixes)
