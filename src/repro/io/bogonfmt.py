"""The Team Cymru plain-text bogon list format.

The operational artefact the paper consumes (Section 3.3): one prefix
per line, ``#`` comments, blank lines ignored. Operators commonly
fetch this file verbatim into router configs, so the loader is strict
about prefix syntax and overlap.
"""

from __future__ import annotations

import pathlib
from collections.abc import Iterable

from repro.net.prefix import Prefix


def write_bogon_file(
    prefixes: Iterable[tuple[Prefix, str]], path: str | pathlib.Path
) -> None:
    """Write ``(prefix, comment)`` pairs in Team Cymru style."""
    with open(path, "w") as handle:
        handle.write("# bogon reference (generated)\n")
        for prefix, comment in prefixes:
            handle.write(f"{prefix}  # {comment}\n" if comment else f"{prefix}\n")


def load_bogon_file(
    path: str | pathlib.Path, reject_overlaps: bool = True
) -> list[Prefix]:
    """Parse a bogon file; returns prefixes in file order.

    ``reject_overlaps`` raises when two entries overlap — a real
    aggregated bogon list never overlaps, and overlap usually means a
    corrupted merge.
    """
    prefixes: list[Prefix] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, 1):
            text = line.split("#", 1)[0].strip()
            if not text:
                continue
            try:
                prefix = Prefix.parse(text)
            except ValueError as exc:
                raise ValueError(f"{path}:{line_number}: {exc}") from exc
            prefixes.append(prefix)
    if reject_overlaps:
        ordered = sorted(prefixes)
        for a, b in zip(ordered, ordered[1:]):
            if a.last >= b.first:
                raise ValueError(f"overlapping bogon entries: {a} and {b}")
    return prefixes
