"""I/O boundaries: flow tables, route observations, operator formats.

The paper's pipeline sits between real file formats (IPFIX exports,
MRT dumps, Team Cymru bogon lists, plain-text prefix filters). This
package provides the equivalent boundaries so the library composes
with external tooling:

* :mod:`repro.io.flows` — FlowTable ⇄ ``.npz`` (compact columnar) and
  CSV (interoperable) round-trips.
* :mod:`repro.io.routes` — RouteObservation streams ⇄ an MRT-inspired
  line format (``TABLE_DUMP2``-style records).
* :mod:`repro.io.bogonfmt` — the Team Cymru plain-text bogon format.
* :mod:`repro.io.filters` — prefix filter lists in router-style
  ``permit``-line syntax.

The flow-CSV and route-dump readers accept
``on_error="raise"|"quarantine"``: strict loading raises a structured
:class:`~repro.errors.IngestError`, lenient loading collects bad
records into a :class:`~repro.errors.Quarantine` (re-exported here)
and keeps going.
"""

from repro.errors import IngestError, Quarantine
from repro.io.bogonfmt import load_bogon_file, write_bogon_file
from repro.io.filters import load_filter_list, write_filter_list
from repro.io.flows import (
    load_flows_csv,
    load_flows_npz,
    save_flows_csv,
    save_flows_npz,
)
from repro.io.routes import load_route_dump, write_route_dump

__all__ = [
    "IngestError",
    "Quarantine",
    "load_bogon_file",
    "load_filter_list",
    "load_flows_csv",
    "load_flows_npz",
    "load_route_dump",
    "save_flows_csv",
    "save_flows_npz",
    "write_bogon_file",
    "write_filter_list",
    "write_route_dump",
]
