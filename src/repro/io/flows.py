"""FlowTable persistence.

Two formats:

* ``.npz`` — numpy's compressed container, one array per column.
  Lossless and compact; the native interchange format of this library.
* CSV — one row per flow with dotted-quad addresses, for
  interoperability with spreadsheet/awk-grade tooling. Lossless for
  every column (ports, counters, member ASNs, times, truth labels).

The CSV reader is the pipeline's dirtiest boundary — real exports are
full of truncated rows and mangled addresses — so it supports two
failure modes: ``on_error="raise"`` (the default) aborts on the first
bad record with a structured :class:`~repro.errors.IngestError`, and
``on_error="quarantine"`` loads every good row and collects the bad
ones into a :class:`~repro.errors.Quarantine` report instead. A wrong
header is always fatal: without it no column can be trusted.
"""

from __future__ import annotations

import csv
import logging
import pathlib

import numpy as np

from repro.errors import IngestError, Quarantine
from repro.ixp.flows import FlowTable
from repro.net.addr import addr_to_int, int_to_addr
from repro.obs.metrics import current_metrics
from repro.obs.trace import trace

logger = logging.getLogger(__name__)

_CSV_HEADER = (
    "src", "dst", "proto", "src_port", "dst_port", "packets", "bytes",
    "member", "dst_member", "time", "truth",
)

_ON_ERROR = ("raise", "quarantine")


def save_flows_npz(flows: FlowTable, path: str | pathlib.Path) -> None:
    """Write a flow table to a compressed ``.npz`` file."""
    with trace("io.save_flows_npz", rows=len(flows), path=str(path)):
        np.savez_compressed(
            path,
            **{name: getattr(flows, name) for name in _CSV_HEADER},
        )


def load_flows_npz(path: str | pathlib.Path) -> FlowTable:
    """Read a flow table written by :func:`save_flows_npz`."""
    with trace("io.load_flows_npz", path=str(path)):
        with np.load(path) as archive:
            return FlowTable(**{name: archive[name] for name in _CSV_HEADER})


def save_flows_csv(flows: FlowTable, path: str | pathlib.Path) -> None:
    """Write a flow table as CSV with dotted-quad addresses."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_HEADER)
        for i in range(len(flows)):
            writer.writerow(
                (
                    int_to_addr(int(flows.src[i])),
                    int_to_addr(int(flows.dst[i])),
                    int(flows.proto[i]),
                    int(flows.src_port[i]),
                    int(flows.dst_port[i]),
                    int(flows.packets[i]),
                    int(flows.bytes[i]),
                    int(flows.member[i]),
                    int(flows.dst_member[i]),
                    int(flows.time[i]),
                    int(flows.truth[i]),
                )
            )


def _parse_row(row: list[str]) -> tuple[int, ...]:
    """One CSV row → column values; raises ValueError on any defect."""
    if len(row) != len(_CSV_HEADER):
        raise ValueError(
            f"expected {len(_CSV_HEADER)} fields, got {len(row)}"
        )
    values = [addr_to_int(row[0]), addr_to_int(row[1])]
    for name, text in zip(_CSV_HEADER[2:], row[2:]):
        try:
            values.append(int(text))
        except ValueError:
            raise ValueError(f"bad integer {text!r} in column {name!r}") from None
    return tuple(values)


def load_flows_csv(
    path: str | pathlib.Path,
    *,
    on_error: str = "raise",
    quarantine: Quarantine | None = None,
) -> FlowTable:
    """Read a flow table written by :func:`save_flows_csv`.

    With ``on_error="quarantine"`` malformed rows are collected into
    ``quarantine`` (one is created — and its summary logged — when the
    caller does not pass one) instead of aborting the load.
    """
    if on_error not in _ON_ERROR:
        raise ValueError(f"on_error must be one of {_ON_ERROR}")
    own_quarantine = on_error == "quarantine" and quarantine is None
    if own_quarantine:
        quarantine = Quarantine(source=str(path))
    bad_before = quarantine.count if quarantine is not None else 0
    columns: dict[str, list[int]] = {name: [] for name in _CSV_HEADER}
    with trace("io.load_flows_csv", path=str(path)), \
            open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise IngestError("empty CSV file", path=str(path), line_number=0)
        if tuple(header) != _CSV_HEADER:
            # Unrecoverable even leniently: no column can be trusted.
            raise IngestError(
                f"unexpected CSV header: {header}",
                path=str(path),
                line_number=reader.line_num,
            )
        for row in reader:
            line_number = reader.line_num
            if not row:
                continue
            try:
                values = _parse_row(row)
            except ValueError as exc:
                if on_error == "raise":
                    raise IngestError(
                        f"malformed CSV row: {exc}",
                        path=str(path),
                        line_number=line_number,
                    ) from exc
                assert quarantine is not None
                quarantine.add(line_number, str(exc), ",".join(row))
                continue
            for name, value in zip(_CSV_HEADER, values):
                columns[name].append(value)
    if quarantine is not None and quarantine.count > bad_before:
        current_metrics().counter("ingest.quarantined_rows").inc(
            quarantine.count - bad_before
        )
    if own_quarantine and quarantine:
        logger.warning("%s", quarantine.render())
    return FlowTable(
        **{name: np.array(values) for name, values in columns.items()}
    )
