"""FlowTable persistence.

Two formats:

* ``.npz`` — numpy's compressed container, one array per column.
  Lossless and compact; the native interchange format of this library.
* CSV — one row per flow with dotted-quad addresses, for
  interoperability with spreadsheet/awk-grade tooling. Lossless for
  every column (ports, counters, member ASNs, times, truth labels).
"""

from __future__ import annotations

import csv
import pathlib

import numpy as np

from repro.ixp.flows import FlowTable
from repro.net.addr import addr_to_int, int_to_addr

_CSV_HEADER = (
    "src", "dst", "proto", "src_port", "dst_port", "packets", "bytes",
    "member", "dst_member", "time", "truth",
)


def save_flows_npz(flows: FlowTable, path: str | pathlib.Path) -> None:
    """Write a flow table to a compressed ``.npz`` file."""
    np.savez_compressed(
        path,
        **{name: getattr(flows, name) for name in _CSV_HEADER},
    )


def load_flows_npz(path: str | pathlib.Path) -> FlowTable:
    """Read a flow table written by :func:`save_flows_npz`."""
    with np.load(path) as archive:
        return FlowTable(**{name: archive[name] for name in _CSV_HEADER})


def save_flows_csv(flows: FlowTable, path: str | pathlib.Path) -> None:
    """Write a flow table as CSV with dotted-quad addresses."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_HEADER)
        for i in range(len(flows)):
            writer.writerow(
                (
                    int_to_addr(int(flows.src[i])),
                    int_to_addr(int(flows.dst[i])),
                    int(flows.proto[i]),
                    int(flows.src_port[i]),
                    int(flows.dst_port[i]),
                    int(flows.packets[i]),
                    int(flows.bytes[i]),
                    int(flows.member[i]),
                    int(flows.dst_member[i]),
                    int(flows.time[i]),
                    int(flows.truth[i]),
                )
            )


def load_flows_csv(path: str | pathlib.Path) -> FlowTable:
    """Read a flow table written by :func:`save_flows_csv`."""
    columns: dict[str, list[int]] = {name: [] for name in _CSV_HEADER}
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if tuple(header) != _CSV_HEADER:
            raise ValueError(f"unexpected CSV header: {header}")
        for row in reader:
            if not row:
                continue
            if len(row) != len(_CSV_HEADER):
                raise ValueError(f"malformed CSV row: {row}")
            columns["src"].append(addr_to_int(row[0]))
            columns["dst"].append(addr_to_int(row[1]))
            for name, value in zip(_CSV_HEADER[2:], row[2:]):
                columns[name].append(int(value))
    return FlowTable(
        **{name: np.array(values) for name, values in columns.items()}
    )
