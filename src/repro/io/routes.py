"""Route observation dumps in an MRT-inspired line format.

One record per line, pipe-separated like the widely used
``bgpdump -m`` output of MRT ``TABLE_DUMP2`` files::

    TABLE_DUMP2|<timestamp>|B|<source>|<peer_asn>|<prefix>|<as_path>|...

where ``B`` marks a table-dump entry, ``A`` an update announcement
(our ``from_update`` flag) and ``W`` a withdrawal. The AS path is
space-separated, monitor-first, origin-last — exactly the in-memory
convention of :class:`repro.bgp.messages.RouteObservation`.
"""

from __future__ import annotations

import pathlib
from collections.abc import Iterable, Iterator

from repro.bgp.messages import RouteObservation
from repro.net.prefix import Prefix

_RECORD = "TABLE_DUMP2"


def write_route_dump(
    observations: Iterable[RouteObservation], path: str | pathlib.Path
) -> int:
    """Write observations; returns the number of records written."""
    count = 0
    with open(path, "w") as handle:
        for observation in observations:
            if observation.withdrawal:
                kind = "W"
            elif observation.from_update:
                kind = "A"
            else:
                kind = "B"
            path_text = " ".join(str(asn) for asn in observation.path)
            handle.write(
                f"{_RECORD}|{observation.timestamp}|{kind}|"
                f"{observation.source}|{observation.monitor_peer}|"
                f"{observation.prefix}|{path_text}\n"
            )
            count += 1
    return count


def load_route_dump(path: str | pathlib.Path) -> Iterator[RouteObservation]:
    """Stream observations back from a dump file.

    Malformed lines raise ``ValueError`` with the line number — dumps
    are machine-written, so silence would hide corruption.
    """
    with open(path) as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split("|")
            if len(fields) != 7 or fields[0] != _RECORD:
                raise ValueError(f"{path}:{line_number}: malformed record")
            _record, timestamp, kind, source, peer, prefix_text, path_text = fields
            as_path = tuple(int(asn) for asn in path_text.split())
            if not as_path:
                raise ValueError(f"{path}:{line_number}: empty AS path")
            if int(peer) != as_path[0]:
                raise ValueError(
                    f"{path}:{line_number}: peer {peer} does not match "
                    f"path head {as_path[0]}"
                )
            if kind not in ("A", "B", "W"):
                raise ValueError(f"{path}:{line_number}: bad kind {kind!r}")
            yield RouteObservation(
                prefix=Prefix.parse(prefix_text),
                path=as_path,
                source=source,
                timestamp=int(timestamp),
                from_update=kind in ("A", "W"),
                withdrawal=kind == "W",
            )
