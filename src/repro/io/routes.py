"""Route observation dumps in an MRT-inspired line format.

One record per line, pipe-separated like the widely used
``bgpdump -m`` output of MRT ``TABLE_DUMP2`` files::

    TABLE_DUMP2|<timestamp>|B|<source>|<peer_asn>|<prefix>|<as_path>|...

where ``B`` marks a table-dump entry, ``A`` an update announcement
(our ``from_update`` flag) and ``W`` a withdrawal. The AS path is
space-separated, monitor-first, origin-last — exactly the in-memory
convention of :class:`repro.bgp.messages.RouteObservation`.

Real archived dumps accumulate damage (truncated transfers, encoding
glitches, collector bugs), so the reader supports the same two
failure modes as the flow CSV reader: ``on_error="raise"`` aborts on
the first malformed record with a structured
:class:`~repro.errors.IngestError`, ``on_error="quarantine"`` skips
and records bad lines in a :class:`~repro.errors.Quarantine`.
"""

from __future__ import annotations

import pathlib
import time
from collections.abc import Iterable, Iterator

from repro.bgp.messages import RouteObservation
from repro.errors import IngestError, Quarantine
from repro.net.prefix import Prefix
from repro.obs.metrics import current_metrics
from repro.obs.trace import current_tracer

_RECORD = "TABLE_DUMP2"

_ON_ERROR = ("raise", "quarantine")


def write_route_dump(
    observations: Iterable[RouteObservation], path: str | pathlib.Path
) -> int:
    """Write observations; returns the number of records written."""
    count = 0
    with open(path, "w") as handle:
        for observation in observations:
            if observation.withdrawal:
                kind = "W"
            elif observation.from_update:
                kind = "A"
            else:
                kind = "B"
            path_text = " ".join(str(asn) for asn in observation.path)
            handle.write(
                f"{_RECORD}|{observation.timestamp}|{kind}|"
                f"{observation.source}|{observation.monitor_peer}|"
                f"{observation.prefix}|{path_text}\n"
            )
            count += 1
    return count


def _parse_record(line: str) -> RouteObservation:
    """One dump line → observation; raises ValueError on any defect."""
    fields = line.split("|")
    if len(fields) != 7 or fields[0] != _RECORD:
        raise ValueError("malformed record")
    _record, timestamp, kind, source, peer, prefix_text, path_text = fields
    as_path = tuple(int(asn) for asn in path_text.split())
    if not as_path:
        raise ValueError("empty AS path")
    if int(peer) != as_path[0]:
        raise ValueError(
            f"peer {peer} does not match path head {as_path[0]}"
        )
    if kind not in ("A", "B", "W"):
        raise ValueError(f"bad kind {kind!r}")
    return RouteObservation(
        prefix=Prefix.parse(prefix_text),
        path=as_path,
        source=source,
        timestamp=int(timestamp),
        from_update=kind in ("A", "W"),
        withdrawal=kind == "W",
    )


def load_route_dump(
    path: str | pathlib.Path,
    *,
    on_error: str = "raise",
    quarantine: Quarantine | None = None,
) -> Iterator[RouteObservation]:
    """Stream observations back from a dump file.

    Dumps are machine-written, so by default malformed lines raise an
    :class:`~repro.errors.IngestError` carrying the line number —
    silence would hide corruption. ``on_error="quarantine"`` instead
    skips bad lines and records them (line number, reason, capped raw
    sample) in ``quarantine``, which the caller should inspect after
    the stream is consumed.
    """
    if on_error not in _ON_ERROR:
        raise ValueError(f"on_error must be one of {_ON_ERROR}")
    if on_error == "quarantine" and quarantine is None:
        quarantine = Quarantine(source=str(path))
    start = time.perf_counter()
    yielded = 0
    quarantined = 0
    try:
        with open(path) as handle:
            for line_number, line in enumerate(handle, 1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    observation = _parse_record(line)
                except ValueError as exc:
                    if on_error == "raise":
                        raise IngestError(
                            f"{path}:{line_number}: {exc}",
                            path=str(path),
                            line_number=line_number,
                        ) from exc
                    assert quarantine is not None
                    quarantine.add(line_number, str(exc), line)
                    quarantined += 1
                    continue
                yielded += 1
                yield observation
    finally:
        # Record the span when the consumer finishes (or abandons)
        # the stream — a generator has no other natural exit point.
        tracer = current_tracer()
        if tracer.enabled:
            tracer.record(
                "io.load_route_dump",
                time.perf_counter() - start,
                rows=yielded,
                path=str(path),
            )
        if quarantined:
            current_metrics().counter("ingest.quarantined_rows").inc(
                quarantined
            )
