#!/usr/bin/env python3
"""Audit the filtering hygiene of IXP members (the operator use case).

The paper's Section 5 perspective: given classified traffic, infer
which members filter what, how business types relate to leakage, and
which "spoofing" members are actually just leaking router strays.
Ends with the Section 4.5 sanity check against active Spoofer probes.

Run:  python examples/filtering_audit.py
"""

import numpy as np

from repro.analysis.fig4_ccdf import compute_member_share_ccdf
from repro.analysis.fig5_venn import compute_filtering_venn
from repro.analysis.fig6_scatter import compute_business_scatter
from repro.analysis.fig7_routerips import compute_router_stray_analysis
from repro.analysis.spoofer_crosscheck import cross_check_spoofer
from repro.core import TrafficClass
from repro.datasets.ark import run_ark_campaign
from repro.datasets.peeringdb import build_peeringdb
from repro.datasets.spoofer import run_spoofer_campaign
from repro.experiments import WorldConfig, build_world


def main() -> None:
    world = build_world(WorldConfig.small())
    approach = world.primary
    result = world.result
    rng = np.random.default_rng(123)

    venn = compute_filtering_venn(result, approach)
    print(venn.render())
    print(
        f"\n→ {venn.clean_share():.0%} of members look fully filtered; "
        f"{venn.share('bogon', 'unrouted', 'invalid'):.0%} leak "
        "everything; members emitting Unrouted almost always emit "
        f"other spoofed classes too "
        f"({venn.unrouted_also_other():.0%}, paper: 96%)."
    )

    ccdf = compute_member_share_ccdf(result, approach)
    print("\n" + ccdf.render())

    peeringdb = build_peeringdb(world.topo, rng, list(world.ixp.member_asns))
    for traffic_class in (TrafficClass.BOGON, TrafficClass.INVALID):
        scatter = compute_business_scatter(
            result, approach, peeringdb, traffic_class
        )
        print("\n" + scatter.render())

    ark = run_ark_campaign(world.topo, rng)
    strays = compute_router_stray_analysis(result, approach, ark)
    print("\n" + strays.render())
    before, after = strays.member_reduction
    print(
        f"→ excluding router-stray members reduces the 'spoofing "
        f"member' count {before} → {after} while keeping "
        f"{1 - strays.router_packet_share():.0%} of Invalid packets."
    )

    spoofer = run_spoofer_campaign(
        rng, sorted(world.topo.ases), world.scenario.behaviors
    )
    check = cross_check_spoofer(result, approach, spoofer)
    print("\n" + check.render())


if __name__ == "__main__":
    main()
