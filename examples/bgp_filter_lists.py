#!/usr/bin/env python3
"""Generate per-peer ingress filter lists from BGP data.

The operational implication the paper highlights for network
operators: the same BGP-derived valid-space inference that detects
spoofing passively can generate ingress ACLs ("for now, our
methodology provides a very conservative overestimation of the valid
IP address space per AS ... every network can opt to apply it to
filter its incoming traffic").

This example plays the role of an operator peering with three
networks: it derives each peer's Full-Cone valid space, materialises
a prefix whitelist, and reports how much legitimate/spoofed traffic
the ACL would have passed/dropped against ground truth.

Run:  python examples/bgp_filter_lists.py
"""

import numpy as np

from repro.experiments import WorldConfig, build_world
from repro.ixp.flows import TruthLabel
from repro.net.addr import int_to_addr
from repro.net.prefixset import PrefixSet


def main() -> None:
    world = build_world(WorldConfig.small())
    full_cone = world.approaches["full+orgs"]
    rib = world.rib
    flows = world.scenario.flows

    # Pick the three busiest members as the peers to build ACLs for.
    members, counts = np.unique(flows.member, return_counts=True)
    peers = [int(members[i]) for i in np.argsort(counts)[::-1][:3]]

    for peer in peers:
        bits = full_cone.row_bits(peer)
        origin_asns = [
            rib.indexer.asn(i) for i in np.flatnonzero(bits)
        ]
        # The ACL: every prefix originated inside the peer's cone.
        acl_prefixes = []
        for prefix_id, prefix in enumerate(rib.prefixes()):
            if rib.origin_of(prefix_id) in set(origin_asns):
                acl_prefixes.append(prefix)
        acl = PrefixSet(acl_prefixes)

        peer_rows = flows.member == peer
        src = flows.src[peer_rows]
        allowed = acl.contains_many(src)
        truth = flows.truth[peer_rows]
        spoofed = np.isin(
            truth,
            (
                int(TruthLabel.SPOOF_FLOOD),
                int(TruthLabel.SPOOF_TRIGGER),
                int(TruthLabel.SPOOF_GAMING),
            ),
        )
        legit = truth == int(TruthLabel.LEGIT)
        n = int(peer_rows.sum())
        dropped_spoofed = float((~allowed & spoofed).sum()) / max(spoofed.sum(), 1)
        dropped_legit = float((~allowed & legit).sum()) / max(legit.sum(), 1)
        sample = ", ".join(str(p) for p in acl_prefixes[:3])
        print(
            f"AS{peer}: ACL covers {acl.slash24_equivalents:,.0f} /24s "
            f"({len(acl_prefixes)} prefixes; e.g. {sample})"
        )
        print(
            f"  against {n} observed flows: drops "
            f"{dropped_spoofed:.0%} of spoofed, "
            f"{dropped_legit:.1%} of legitimate flows"
        )
        first_hop = int_to_addr(int(src[0])) if n else "-"
        print(f"  first observed source: {first_hop}\n")

    print(
        "Note the paper's caveat: the Full Cone is deliberately "
        "conservative — strict per-peer ACLs from less conservative "
        "inferences would drop legitimate traffic (Section 2.2's "
        "operators name exactly this risk)."
    )


if __name__ == "__main__":
    main()
