#!/usr/bin/env python3
"""Amplification-attack forensics at an inter-domain vantage point.

The scenario the paper's Section 7 motivates: an operator suspects
NTP amplification is being launched through networks it peers with.
This example isolates the Invalid NTP trigger traffic, profiles the
victims and amplifier-selection strategies (Figure 11b), matches
trigger and response directions to measure the achieved amplification
(Figure 11c), and checks the contacted amplifiers against an
NTP-server census (the paper's ZMap comparison).

Run:  python examples/amplification_forensics.py
"""

import numpy as np

from repro.analysis.fig11_attacks import (
    compute_amplification_timeseries,
    compute_amplifier_ranking,
    compute_ntp_stats,
    compute_spoofing_ratios,
    ntp_trigger_flows,
)
from repro.experiments import WorldConfig, build_world
from repro.net.addr import int_to_addr
from repro.util.timeconst import WEEK


def main() -> None:
    world = build_world(WorldConfig.small())
    approach = world.primary
    result = world.result

    triggers = ntp_trigger_flows(result, approach)
    print(
        f"Invalid NTP trigger traffic: {len(triggers)} flows, "
        f"{triggers.total_packets()} sampled packets "
        f"(x{world.ixp.sampling_rate} real), from "
        f"{np.unique(triggers.member).size} members"
    )

    stats = compute_ntp_stats(result, approach, world.scenario.census)
    print(
        f"\nMember concentration: the top member emits "
        f"{stats.top_member_share:.1%} of all trigger traffic "
        f"(top-5: {stats.top5_member_share:.1%})"
    )
    print(
        f"Victims: {stats.num_victims} spoofed source addresses; "
        f"amplifiers contacted: {stats.num_amplifiers}"
    )
    print("Census overlap (older scans match less — attackers know "
          "servers the scans miss):")
    for label, count in stats.census_overlap.items():
        print(f"  scan {label}: {count} of {stats.num_amplifiers} amplifiers")

    ranking = compute_amplifier_ranking(result, approach)
    print("\nTop victims and amplifier strategies (Fig. 11b):")
    for rank, profile in enumerate(ranking.profiles[:5], 1):
        strategy = (
            "concentrated" if profile.concentration() > 0.5 else "distributed"
        )
        print(
            f"  #{rank} victim {int_to_addr(profile.victim)}: "
            f"{profile.num_amplifiers} amplifiers, "
            f"{profile.total_packets} trigger pkts, "
            f"top-10 amplifiers carry {profile.concentration():.0%} "
            f"→ {strategy}"
        )

    window = world.scenario.config.window_seconds
    timeseries = compute_amplification_timeseries(
        result, approach, window, start=2 * WEEK, end=min(3 * WEEK, window)
    )
    print(
        f"\nAmplification effect on matched trigger/response pairs "
        f"(Fig. 11c): response bytes = "
        f"×{timeseries.byte_amplification():.1f} trigger bytes, "
        f"packet ratio ×{timeseries.packet_ratio():.2f}, hourly "
        f"correlation {timeseries.packet_correlation():.2f}"
    )

    ratios = compute_spoofing_ratios(result, approach)
    print(
        "\nSelective vs random spoofing (Fig. 11a, Invalid class): "
        f"{ratios.leftmost_share('invalid'):.0%} of hot destinations "
        "receive traffic from very few sources (amplifiers), "
        f"{ratios.rightmost_share('invalid'):.0%} from a fresh source "
        "per packet (random floods)"
    )


if __name__ == "__main__":
    main()
