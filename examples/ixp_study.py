#!/usr/bin/env python3
"""The full IXP measurement study — every table and figure.

Reproduces the paper's complete evaluation over one synthetic world:
Table 1, Figures 2 and 4–11, the Section 4.4 WHOIS false-positive
hunt, the Section 4.5 Spoofer cross-check, the Section 7 NTP attack
statistics, and the Section 2.2 operator survey.

Run:  python examples/ixp_study.py [--preset tiny|small|default]
"""

import argparse

import numpy as np

from repro.analysis.report import build_study_report
from repro.experiments import WorldConfig, build_world
from repro.survey import generate_survey_responses, tabulate


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--preset",
        choices=("tiny", "small", "default"),
        default="small",
        help="world size preset (default: small)",
    )
    args = parser.parse_args()

    print(f"Building the {args.preset!r} world (this runs the full "
          "topology → BGP → cones → traffic → classification pipeline)...")
    world = build_world(getattr(WorldConfig, args.preset)())
    report = build_study_report(world)

    print("\n" + "=" * 72)
    print("Operator survey (Section 2.2)")
    print("=" * 72)
    survey = tabulate(generate_survey_responses(np.random.default_rng(7)))
    print(survey.render())

    print("\n" + "=" * 72)
    print(f"Measurement study (approach: {world.primary})")
    print("=" * 72)
    print(report.render())

    print("\n" + "=" * 72)
    print("Beyond the paper (its stated future work, implemented)")
    print("=" * 72)
    _print_extensions(world, report)


def _print_extensions(world, report) -> None:
    from repro.analysis.attack_events import (
        extract_attack_events,
        match_against_plan,
    )
    from repro.analysis.comparison import compare_approaches
    from repro.analysis.fig1_categories import compute_address_categories
    from repro.analysis.member_report import member_hygiene_report
    from repro.core import evaluate_stray_detection

    print(compute_address_categories(world.rib).render())

    events = extract_attack_events(world.result, world.primary)
    print("\n" + match_against_plan(events, world.scenario.plan).render())

    ark = report.datasets["ark"]
    print("\n" + evaluate_stray_detection(world.result, world.primary, ark).render())

    cards = member_hygiene_report(world.result, world.primary, ark)
    print("\nWorst-hygiene members:")
    for card in cards[:5]:
        print("  " + card.render())

    comparison = compare_approaches(
        world.result, ["naive+orgs", "cc+orgs", "full+orgs"]
    )
    print("\n" + comparison.render())


if __name__ == "__main__":
    main()
