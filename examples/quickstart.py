#!/usr/bin/env python3
"""Quickstart: classify inter-domain flows with the passive detector.

Builds a small synthetic measurement study end to end — topology, BGP
observation, the three valid-space inference approaches, an IXP with
sampled traffic — then classifies every flow into Bogon / Unrouted /
Invalid / Valid (the paper's Figure 3 pipeline) and prints Table 1
plus detector quality against ground truth.

Run:  python examples/quickstart.py
"""

from repro.analysis.table1 import compute_table1
from repro.core import evaluate_against_truth
from repro.experiments import WorldConfig, build_world


def main() -> None:
    print("Building a small synthetic measurement study...")
    world = build_world(WorldConfig.small())
    flows = world.scenario.flows
    print(
        f"  topology: {len(world.topo)} ASes, "
        f"{len(world.ixp)} IXP members, "
        f"{world.rib.num_prefixes} routed prefixes"
    )
    print(f"  traffic:  {len(flows)} sampled flows, "
          f"{flows.total_packets()} sampled packets\n")

    table = compute_table1(world.result, world.ixp.sampling_rate)
    print(table.render())

    print("\nDetector quality vs ground truth (packet-weighted):")
    for approach in ("naive+orgs", "cc+orgs", "full+orgs"):
        quality = evaluate_against_truth(world.result, approach)
        print(
            f"  {approach:10s} recall={quality.recall:6.1%} "
            f"precision={quality.precision:6.1%} "
            f"(strays {quality.stray_share:5.1%}, hidden-legit "
            f"{quality.hidden_legit_share:5.1%} of flags)"
        )

    primary = world.primary
    print(
        f"\nThe paper proceeds with the most conservative approach "
        f"({primary!r}); see examples/ixp_study.py for the full analysis."
    )


if __name__ == "__main__":
    main()
