#!/usr/bin/env python3
"""An offline detection pipeline over files — the adoption story.

A downstream user does not start from our synthetic world: they have a
BGP dump, a bogon file, and flow exports. This example plays that role
end to end using the library's I/O boundaries:

1. simulate a world, then *export* its BGP observations (MRT-style
   dump), bogon list (Team Cymru format) and flows (CSV/NPZ),
2. throw the world away and rebuild the detector *purely from the
   files*,
3. classify the flows, print Table 1, and emit a deployable
   router-style filter list for the busiest peer.

Run:  python examples/offline_pipeline.py
"""

import pathlib
import tempfile

import numpy as np

from repro.analysis.table1 import compute_table1
from repro.bgp.rib import GlobalRIB
from repro.bgp.simulate import simulate_bgp
from repro.cones import FullConeValidSpace, apply_org_merge
from repro.core import SpoofingClassifier, build_ingress_acl
from repro.datasets.bogons import BOGON_PREFIXES
from repro.experiments import WorldConfig, build_world
from repro.io import (
    load_bogon_file,
    load_flows_npz,
    load_route_dump,
    save_flows_npz,
    write_bogon_file,
    write_filter_list,
    write_route_dump,
)
from repro.net.prefixset import PrefixSet


def export_world(workdir: pathlib.Path) -> dict[str, pathlib.Path]:
    """Phase 1: produce the input files a real deployment would have."""
    world = build_world(WorldConfig.tiny(), classify=False)
    rng = np.random.default_rng(world.config.seed)
    observations = simulate_bgp(
        world.topo, world.policies, world.collectors,
        world.ixp.route_server, rng,
    )
    paths = {
        "routes": workdir / "bgp.dump",
        "bogons": workdir / "bogons.txt",
        "flows": workdir / "flows.npz",
    }
    n_records = write_route_dump(observations, paths["routes"])
    write_bogon_file(BOGON_PREFIXES, paths["bogons"])
    save_flows_npz(world.scenario.flows, paths["flows"])
    print(
        f"exported {n_records} BGP records, {len(BOGON_PREFIXES)} bogon "
        f"prefixes, {len(world.scenario.flows)} flows → {workdir}"
    )
    return paths


def detect_from_files(paths: dict[str, pathlib.Path]) -> None:
    """Phase 2: rebuild everything from disk and classify."""
    rib = GlobalRIB.from_observations(load_route_dump(paths["routes"]))
    bogons = PrefixSet(load_bogon_file(paths["bogons"]))
    flows = load_flows_npz(paths["flows"])
    print(
        f"reloaded: {rib.num_prefixes} prefixes, "
        f"{len(rib.adjacencies())} AS links, {len(flows)} flows"
    )

    full_cone = FullConeValidSpace(rib)
    classifier = SpoofingClassifier(rib, {"full": full_cone}, bogons=bogons)
    result = classifier.classify(flows)
    print()
    print(compute_table1(result).render())

    members, counts = np.unique(flows.member, return_counts=True)
    busiest = int(members[np.argmax(counts)])
    acl = build_ingress_acl(full_cone, busiest)
    acl_path = paths["routes"].parent / f"as{busiest}-ingress.txt"
    lines = write_filter_list(acl, busiest, acl_path, approach="full")
    print(f"\nwrote {lines}-line ingress whitelist for AS{busiest} → {acl_path}")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-offline-") as tmp:
        workdir = pathlib.Path(tmp)
        paths = export_world(workdir)
        detect_from_files(paths)


if __name__ == "__main__":
    main()
