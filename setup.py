"""Minimal setup shim.

The project is configured via pyproject.toml; this file exists so the
package can be installed editable in offline environments that lack
the `wheel` package (legacy `pip install -e . --no-use-pep517`).
"""

from setuptools import setup

setup()
