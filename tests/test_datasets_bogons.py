"""Tests for the bogon reference list."""

import numpy as np

from repro.datasets.bogons import (
    BOGON_PREFIXES,
    bogon_prefix_set,
    bogon_slash24_equivalents,
    is_bogon,
)
from repro.net.addr import addr_to_int
from repro.net.prefix import Prefix


class TestBogonList:
    def test_fourteen_prefixes(self):
        # The paper's Team Cymru list has 14 non-overlapping prefixes.
        assert len(BOGON_PREFIXES) == 14

    def test_non_overlapping(self):
        ordered = sorted(p for p, _r in BOGON_PREFIXES)
        for a, b in zip(ordered, ordered[1:]):
            assert a.last < b.first

    def test_size_matches_paper(self):
        # The paper states both "218K /24 equivalents" and "13.8% of
        # IPv4" for the bogon space; the two are inconsistent (13.8% =
        # ~2.3M /24s). 218K is the size *without* multicast/future-use,
        # which the paper's own Figure 10 includes — we follow the
        # 13.8% figure (multicast and class E are bogons).
        assert 2_200_000 < bogon_slash24_equivalents() < 2_400_000
        without_high = bogon_slash24_equivalents() - (
            2 * Prefix.parse("224.0.0.0/4").slash24_equivalents
        )
        assert 210_000 < without_high < 230_000

    def test_known_members(self):
        for text in (
            "10.1.2.3",
            "192.168.1.1",
            "172.16.0.1",
            "100.64.0.1",
            "127.0.0.1",
            "169.254.1.1",
            "224.0.0.1",
            "240.0.0.1",
            "255.255.255.255",
            "198.51.100.7",
        ):
            assert is_bogon(addr_to_int(text)), text

    def test_known_non_members(self):
        for text in ("8.8.8.8", "1.1.1.1", "193.0.0.1", "100.128.0.1"):
            assert not is_bogon(addr_to_int(text)), text

    def test_vectorised_membership(self):
        addrs = np.array(
            [addr_to_int("10.0.0.1"), addr_to_int("8.8.8.8")], dtype=np.uint64
        )
        assert bogon_prefix_set().contains_many(addrs).tolist() == [True, False]

    def test_singleton_is_cached(self):
        assert bogon_prefix_set() is bogon_prefix_set()

    def test_share_of_ipv4(self):
        # The paper's Figure 1a: bogon = 13.8% of IPv4.
        share = bogon_prefix_set().num_addresses / 2**32
        assert 0.13 < share < 0.15
