"""Tests for the I/O layer (flows, route dumps, bogons, filter lists)."""

import numpy as np
import pytest

from repro.bgp.messages import RouteObservation
from repro.datasets.bogons import BOGON_PREFIXES
from repro.io import (
    IngestError,
    Quarantine,
    load_bogon_file,
    load_filter_list,
    load_flows_csv,
    load_flows_npz,
    load_route_dump,
    save_flows_csv,
    save_flows_npz,
    write_bogon_file,
    write_filter_list,
    write_route_dump,
)
from repro.net.prefix import Prefix
from repro.net.prefixset import PrefixSet


def _equal_tables(a, b) -> bool:
    return all(
        (getattr(a, name) == getattr(b, name)).all()
        for name in (
            "src", "dst", "proto", "src_port", "dst_port", "packets",
            "bytes", "member", "dst_member", "time", "truth",
        )
    )


class TestFlowIO:
    def test_npz_roundtrip(self, tiny_world, tmp_path):
        flows = tiny_world.scenario.flows.select(np.arange(500))
        path = tmp_path / "flows.npz"
        save_flows_npz(flows, path)
        assert _equal_tables(flows, load_flows_npz(path))

    def test_csv_roundtrip(self, tiny_world, tmp_path):
        flows = tiny_world.scenario.flows.select(np.arange(200))
        path = tmp_path / "flows.csv"
        save_flows_csv(flows, path)
        assert _equal_tables(flows, load_flows_csv(path))

    def test_csv_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,header\n")
        with pytest.raises(ValueError):
            load_flows_csv(path)

    def test_csv_rejects_short_row(self, tiny_world, tmp_path):
        flows = tiny_world.scenario.flows.select(np.arange(5))
        path = tmp_path / "flows.csv"
        save_flows_csv(flows, path)
        with open(path, "a") as handle:
            handle.write("1.2.3.4,5.6.7.8,6\n")
        with pytest.raises(ValueError):
            load_flows_csv(path)


class TestFlowIngestModes:
    """Strict vs quarantine loading of damaged flow CSVs."""

    def _dirty_csv(self, tiny_world, tmp_path):
        """A 10-row CSV with three distinct defects injected.

        Data lines are 2..11 (line 1 is the header); we damage lines
        4, 7 and 10.
        """
        flows = tiny_world.scenario.flows.select(np.arange(10))
        path = tmp_path / "flows.csv"
        save_flows_csv(flows, path)
        lines = path.read_text().splitlines()
        lines[3] = lines[3].split(",", 1)[1]  # truncated row (10 fields)
        fields = lines[6].split(",")
        fields[0] = "300.1.2.999"  # bad dotted quad
        lines[6] = ",".join(fields)
        fields = lines[9].split(",")
        fields[5] = "not-a-number"  # non-integer packets column
        lines[9] = ",".join(fields)
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_strict_raises_with_line_number(self, tiny_world, tmp_path):
        path = self._dirty_csv(tiny_world, tmp_path)
        with pytest.raises(IngestError) as excinfo:
            load_flows_csv(path)
        assert excinfo.value.line_number == 4
        assert excinfo.value.path == str(path)

    def test_quarantine_reports_every_bad_line(self, tiny_world, tmp_path):
        path = self._dirty_csv(tiny_world, tmp_path)
        quarantine = Quarantine(source=str(path))
        flows = load_flows_csv(
            path, on_error="quarantine", quarantine=quarantine
        )
        assert len(flows) == 7
        assert quarantine.line_numbers == [4, 7, 10]
        assert quarantine.count == 3
        rendered = quarantine.render()
        assert "line 4" in rendered
        assert "line 10" in rendered

    def test_quarantine_auto_created_when_omitted(
        self, tiny_world, tmp_path, caplog
    ):
        path = self._dirty_csv(tiny_world, tmp_path)
        with caplog.at_level("WARNING", logger="repro.io.flows"):
            flows = load_flows_csv(path, on_error="quarantine")
        assert len(flows) == 7
        assert any("quarantin" in r.message for r in caplog.records)

    def test_wrong_header_fatal_even_in_quarantine(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,header\n1,2\n")
        with pytest.raises(IngestError) as excinfo:
            load_flows_csv(path, on_error="quarantine")
        assert excinfo.value.line_number == 1

    def test_empty_file_fatal(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(IngestError):
            load_flows_csv(path, on_error="quarantine")

    def test_bad_mode_rejected(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("h\n")
        with pytest.raises(ValueError):
            load_flows_csv(path, on_error="ignore")


class TestRouteDumpIO:
    def _observations(self):
        return [
            RouteObservation(
                Prefix.parse("60.0.0.0/16"), (10, 20, 30), "rrc00", 0, False
            ),
            RouteObservation(
                Prefix.parse("61.0.0.0/16"), (11, 30), "ixp-rs", 12345, True
            ),
        ]

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "dump.txt"
        assert write_route_dump(self._observations(), path) == 2
        loaded = list(load_route_dump(path))
        assert loaded == self._observations()

    def test_rejects_malformed(self, tmp_path):
        path = tmp_path / "dump.txt"
        path.write_text("garbage line\n")
        with pytest.raises(ValueError):
            list(load_route_dump(path))

    def test_rejects_peer_mismatch(self, tmp_path):
        path = tmp_path / "dump.txt"
        path.write_text("TABLE_DUMP2|0|B|rrc00|99|60.0.0.0/16|10 20\n")
        with pytest.raises(ValueError):
            list(load_route_dump(path))

    def test_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "dump.txt"
        write_route_dump(self._observations(), path)
        text = path.read_text()
        path.write_text("# header\n\n" + text)
        assert len(list(load_route_dump(path))) == 2

    def test_strict_error_names_line(self, tmp_path):
        path = tmp_path / "dump.txt"
        write_route_dump(self._observations(), path)
        with open(path, "a") as handle:
            handle.write("TABLE_DUMP2|0|B|rrc00|10|60.0.0.0/16|\n")
        with pytest.raises(IngestError) as excinfo:
            list(load_route_dump(path))
        assert excinfo.value.line_number == 3
        assert "empty AS path" in str(excinfo.value)

    def test_quarantine_collects_all_defects(self, tmp_path):
        path = tmp_path / "dump.txt"
        write_route_dump(self._observations(), path)
        with open(path, "a") as handle:
            # empty AS path, bad record kind, truncated record
            handle.write("TABLE_DUMP2|0|B|rrc00|10|60.0.0.0/16|\n")
            handle.write("TABLE_DUMP2|0|X|rrc00|10|62.0.0.0/16|10 30\n")
            handle.write("TABLE_DUMP2|0|B|rrc00\n")
        quarantine = Quarantine(source=str(path))
        loaded = list(
            load_route_dump(
                path, on_error="quarantine", quarantine=quarantine
            )
        )
        assert loaded == self._observations()
        assert quarantine.line_numbers == [3, 4, 5]
        assert "empty AS path" in quarantine.reasons
        assert "bad kind 'X'" in quarantine.reasons
        assert "malformed record" in quarantine.reasons

    def test_world_scale_roundtrip(self, bgp_only_world, tmp_path):
        from repro.bgp.rib import GlobalRIB
        from repro.bgp.simulate import simulate_bgp

        world = bgp_only_world
        rng = np.random.default_rng(world.config.seed)
        observations = list(
            simulate_bgp(
                world.topo, world.policies, world.collectors,
                world.ixp.route_server, rng,
            )
        )
        path = tmp_path / "world.dump"
        write_route_dump(observations, path)
        rib = GlobalRIB.from_observations(load_route_dump(path))
        # Compare against a RIB built from the same in-memory stream
        # (the world's own RIB used a different RNG position).
        reference = GlobalRIB.from_observations(observations)
        assert rib.num_prefixes == reference.num_prefixes
        assert rib.adjacencies() == reference.adjacencies()
        assert rib.num_paths == reference.num_paths


class TestBogonIO:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "bogons.txt"
        write_bogon_file(BOGON_PREFIXES, path)
        loaded = load_bogon_file(path)
        assert loaded == [p for p, _c in BOGON_PREFIXES]

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "bogons.txt"
        path.write_text("# comment\n10.0.0.0/8\n\n192.168.0.0/16 # private\n")
        assert load_bogon_file(path) == [
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("192.168.0.0/16"),
        ]

    def test_rejects_overlap(self, tmp_path):
        path = tmp_path / "bogons.txt"
        path.write_text("10.0.0.0/8\n10.1.0.0/16\n")
        with pytest.raises(ValueError):
            load_bogon_file(path)
        assert len(load_bogon_file(path, reject_overlaps=False)) == 2

    def test_rejects_bad_prefix(self, tmp_path):
        path = tmp_path / "bogons.txt"
        path.write_text("10.0.0.1/8\n")
        with pytest.raises(ValueError) as excinfo:
            load_bogon_file(path)
        assert ":1:" in str(excinfo.value)


class TestFilterListIO:
    def test_roundtrip(self, tmp_path):
        acl = PrefixSet(
            [Prefix.parse("60.0.0.0/16"), Prefix.parse("61.2.0.0/24")]
        )
        path = tmp_path / "acl.txt"
        count = write_filter_list(acl, 64500, path)
        assert count == 2
        name, loaded = load_filter_list(path)
        assert name == "AS64500-in"
        assert loaded == acl

    def test_rejects_mixed_names(self, tmp_path):
        path = tmp_path / "acl.txt"
        path.write_text(
            "ip prefix-list A permit 60.0.0.0/16\n"
            "ip prefix-list B permit 61.0.0.0/16\n"
        )
        with pytest.raises(ValueError):
            load_filter_list(path)

    def test_rejects_empty(self, tmp_path):
        path = tmp_path / "acl.txt"
        path.write_text("! nothing here\n")
        with pytest.raises(ValueError):
            load_filter_list(path)
