"""Resilience layer: taxonomy, supervision, fault injection, quarantine.

The supervised streaming path must survive deterministic worker
crashes, hangs, hard deaths, and corrupted chunk payloads according to
its :class:`FailurePolicy` — and a recovered run must be bit-equal to
a fault-free one. Lenient ingest must load every good record of a
corrupted file and report every bad line number exactly.
"""

import os

import numpy as np
import pytest

import repro.core.classifier as classifier_mod
from repro.bgp.messages import RouteObservation
from repro.bgp.rib import GlobalRIB
from repro.cones.full_cone import FullConeValidSpace
from repro.cones.naive import NaiveValidSpace
from repro.core import FailurePolicy, SpoofingClassifier, TrafficClass
from repro.errors import (
    ClassificationError,
    IngestError,
    Quarantine,
    ReproError,
    WorkerError,
)
from repro.experiments.runner import World, classify_world_stream
from repro.io import load_flows_csv, load_route_dump, save_flows_csv
from repro.ixp.flows import PROTO_TCP, FlowTable, TruthLabel
from repro.net.addr import addr_to_int
from repro.net.errors import AddressError, PrefixError
from repro.net.prefix import Prefix
from repro.testing import (
    FaultPlan,
    FaultSpec,
    InjectedCorruption,
    InjectedCrash,
    corrupt_file,
)

#: Fast backoff/timeout knobs so fault tests stay sub-second-ish.
FAST_RETRY = FailurePolicy(
    mode="retry", max_retries=2, chunk_timeout=20.0, backoff_base=0.01
)


def obs(prefix, *path):
    return RouteObservation(Prefix.parse(prefix), tuple(path), "rrc00")


@pytest.fixture()
def toy():
    rib = GlobalRIB()
    rib.add(obs("60.0.0.0/16", 20, 1, 10, 100))
    rib.add(obs("20.0.0.0/16", 10, 1, 20, 200))
    classifier = SpoofingClassifier(
        rib, {"naive": NaiveValidSpace(rib), "full": FullConeValidSpace(rib)}
    )
    return rib, classifier


def flow_table(rows):
    """rows: list of (src_text, member)."""
    n = len(rows)
    return FlowTable(
        src=np.array([addr_to_int(r[0]) for r in rows], dtype=np.uint64),
        dst=np.full(n, addr_to_int("20.0.0.1"), dtype=np.uint64),
        proto=np.full(n, PROTO_TCP),
        src_port=np.full(n, 1000),
        dst_port=np.full(n, 80),
        packets=np.full(n, 2),
        bytes=np.full(n, 120),
        member=np.array([r[1] for r in rows], dtype=np.int64),
        dst_member=np.full(n, 20, dtype=np.int64),
        time=np.arange(n, dtype=np.int64),
        truth=np.full(n, int(TruthLabel.LEGIT), dtype=np.uint8),
    )


@pytest.fixture()
def eight_rows():
    return flow_table(
        [
            ("60.0.5.5", 100),
            ("20.0.0.9", 200),
            ("60.0.5.5", 200),  # invalid under full
            ("9.9.9.9", 100),  # unrouted
            ("10.1.2.3", 100),  # bogon
            ("60.0.7.7", 10),
            ("20.0.1.1", 9999),  # unknown member → invalid
            ("60.0.9.9", 100),
        ]
    )


class TestTaxonomy:
    def test_hierarchy(self):
        assert issubclass(IngestError, ReproError)
        assert issubclass(IngestError, ValueError)
        assert issubclass(WorkerError, ClassificationError)
        assert issubclass(ClassificationError, ReproError)

    def test_net_errors_rebased(self):
        assert issubclass(AddressError, ReproError)
        assert issubclass(AddressError, ValueError)
        assert issubclass(PrefixError, ReproError)
        with pytest.raises(ReproError):
            addr_to_int("300.1.2.3")

    def test_structured_context(self):
        err = WorkerError("boom", chunk_index=7, attempts=3)
        assert err.chunk_index == 7
        assert err.attempts == 3
        assert "chunk_index=7" in str(err)
        ingest = IngestError("bad row", path="x.csv", line_number=12)
        assert ingest.line_number == 12
        assert ingest.path == "x.csv"

    def test_none_context_dropped(self):
        err = ClassificationError("x", chunk_index=None)
        assert "chunk_index" not in err.context


class TestFailurePolicy:
    def test_coerce(self):
        assert FailurePolicy.coerce(None) is None
        policy = FailurePolicy.coerce("degrade")
        assert policy.mode == "degrade"
        assert FailurePolicy.coerce(policy) is policy
        with pytest.raises(TypeError):
            FailurePolicy.coerce(42)

    def test_validation(self):
        with pytest.raises(ValueError):
            FailurePolicy(mode="explode")
        with pytest.raises(ValueError):
            FailurePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            FailurePolicy(chunk_timeout=0)

    def test_backoff_grows(self):
        policy = FailurePolicy(backoff_base=0.1, backoff_factor=2.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)


class TestFaultPlan:
    def test_positional_matching(self):
        plan = FaultPlan((FaultSpec("crash", 1, attempt=1),))
        plan(0, 1, True)  # other chunk: no fault
        plan(1, 2, True)  # other attempt: no fault
        plan(1, 1, False)  # worker-scoped: inline is clean
        with pytest.raises(InjectedCrash):
            plan(1, 1, True)

    def test_attempt_zero_matches_all(self):
        plan = FaultPlan((FaultSpec("corrupt", 2, attempt=0, scope="any"),))
        for attempt in (1, 2, 5):
            with pytest.raises(InjectedCorruption):
                plan(2, attempt, False)

    def test_from_rates_deterministic(self):
        a = FaultPlan.from_rates(7, 50, crash_rate=0.2, corrupt_rate=0.1)
        b = FaultPlan.from_rates(7, 50, crash_rate=0.2, corrupt_rate=0.1)
        assert a == b
        c = FaultPlan.from_rates(8, 50, crash_rate=0.2, corrupt_rate=0.1)
        assert a != c
        assert any(f.kind == "crash" for f in a.faults)

    def test_rejects_bad_spec(self):
        with pytest.raises(ValueError):
            FaultSpec("meltdown", 0)
        with pytest.raises(ValueError):
            FaultSpec("crash", 0, scope="everywhere")

    def test_fault_log_written(self, tmp_path):
        log = tmp_path / "faults.log"
        plan = FaultPlan((FaultSpec("crash", 3),), log_path=str(log))
        with pytest.raises(InjectedCrash):
            plan(3, 1, True)
        text = log.read_text()
        assert "chunk=3" in text and "kind=crash" in text


class TestSerialPolicies:
    def test_degrade_drops_bad_chunk(self, toy, eight_rows):
        _rib, classifier = toy
        plan = FaultPlan((FaultSpec("corrupt", 1, attempt=0, scope="any"),))
        stream = classifier.classify_stream(
            eight_rows, chunk_rows=2, policy="degrade", fault_injector=plan
        )
        assert stream.n_flows == 6
        assert stream.failures.rows_dropped == 2
        assert stream.failures.chunks_dropped == 1
        assert not stream.complete
        assert stream.stats.rows_dropped == 2
        assert "partial" in stream.stats.render()

    def test_fail_fast_raises_structured(self, toy, eight_rows):
        _rib, classifier = toy
        plan = FaultPlan((FaultSpec("corrupt", 2, attempt=0, scope="any"),))
        with pytest.raises(ClassificationError) as excinfo:
            classifier.classify_stream(
                eight_rows, chunk_rows=2, policy="fail_fast",
                fault_injector=plan,
            )
        assert excinfo.value.chunk_index == 2

    def test_no_policy_propagates_raw(self, toy, eight_rows):
        _rib, classifier = toy
        plan = FaultPlan((FaultSpec("corrupt", 0, attempt=0, scope="any"),))
        with pytest.raises(InjectedCorruption):
            classifier.classify_stream(
                eight_rows, chunk_rows=2, fault_injector=plan
            )


class TestSupervisedParallel:
    def test_crash_with_retry_bit_equal(self, toy, eight_rows):
        _rib, classifier = toy
        clean = classifier.classify_stream(
            eight_rows, chunk_rows=2, keep_labels=True
        )
        plan = FaultPlan((FaultSpec("crash", 1),))
        stream = classifier.classify_stream(
            eight_rows, chunk_rows=2, n_workers=2, keep_labels=True,
            policy=FAST_RETRY, fault_injector=plan,
        )
        assert stream.n_flows == len(eight_rows)
        assert stream.failures, "failures record must be non-empty"
        assert stream.failures.chunks_retried == 1
        assert stream.complete
        for name in classifier.approach_names:
            assert (
                stream.label_vector(name) == clean.label_vector(name)
            ).all(), name
            for cls in TrafficClass:
                assert stream.class_counts(name)[cls] == clean.class_counts(
                    name
                )[cls]

    def test_fail_fast_raises_worker_error_naming_chunk(
        self, toy, eight_rows
    ):
        _rib, classifier = toy
        plan = FaultPlan((FaultSpec("crash", 2),))
        with pytest.raises(WorkerError) as excinfo:
            classifier.classify_stream(
                eight_rows, chunk_rows=2, n_workers=2,
                policy=FailurePolicy("fail_fast", chunk_timeout=20.0),
                fault_injector=plan,
            )
        assert excinfo.value.chunk_index == 2
        assert "chunk 2" in str(excinfo.value)

    def test_hung_worker_reclaimed_within_timeout(self, toy, eight_rows):
        _rib, classifier = toy
        clean = classifier.classify_stream(
            eight_rows, chunk_rows=2, keep_labels=True
        )
        plan = FaultPlan((FaultSpec("hang", 1, hang_seconds=120.0),))
        policy = FailurePolicy(
            mode="retry", max_retries=1, chunk_timeout=1.0, backoff_base=0.01
        )
        stream = classifier.classify_stream(
            eight_rows, chunk_rows=2, n_workers=2, keep_labels=True,
            policy=policy, fault_injector=plan,
        )
        # Had the hang blocked pool.imap, this test would never return;
        # the 120 s sleep vs the 1 s deadline is the proof of reclaim.
        assert stream.failures.chunks_retried == 1
        assert stream.complete
        for name in classifier.approach_names:
            assert (
                stream.label_vector(name) == clean.label_vector(name)
            ).all(), name

    def test_dead_worker_reclaimed(self, toy, eight_rows):
        _rib, classifier = toy
        clean = classifier.classify_stream(
            eight_rows, chunk_rows=2, keep_labels=True
        )
        plan = FaultPlan((FaultSpec("die", 1),))
        policy = FailurePolicy(
            mode="retry", max_retries=1, chunk_timeout=1.5, backoff_base=0.01
        )
        stream = classifier.classify_stream(
            eight_rows, chunk_rows=2, n_workers=2, keep_labels=True,
            policy=policy, fault_injector=plan,
        )
        assert stream.failures
        assert stream.complete
        for name in classifier.approach_names:
            assert (
                stream.label_vector(name) == clean.label_vector(name)
            ).all(), name

    def test_retry_exhaustion_falls_back_in_process(self, toy, eight_rows):
        _rib, classifier = toy
        clean = classifier.classify_stream(
            eight_rows, chunk_rows=2, keep_labels=True
        )
        # Crash on every worker attempt; only the inline fallback works.
        plan = FaultPlan((FaultSpec("crash", 1, attempt=0, scope="worker"),))
        stream = classifier.classify_stream(
            eight_rows, chunk_rows=2, n_workers=2, keep_labels=True,
            policy=FAST_RETRY, fault_injector=plan,
        )
        assert stream.failures.chunks_degraded == 1
        assert stream.complete
        for name in classifier.approach_names:
            assert (
                stream.label_vector(name) == clean.label_vector(name)
            ).all(), name

    def test_corrupt_chunk_degrades_to_dropped_rows(self, toy, eight_rows):
        _rib, classifier = toy
        plan = FaultPlan((FaultSpec("corrupt", 0, attempt=0, scope="any"),))
        stream = classifier.classify_stream(
            eight_rows, chunk_rows=2, n_workers=2, keep_labels=True,
            policy=FailurePolicy("degrade", chunk_timeout=20.0),
            fault_injector=plan,
        )
        assert stream.n_flows == 6
        assert stream.failures.rows_dropped == 2
        assert not stream.complete
        assert "PARTIAL" in repr(stream)
        # The surviving labels still line up with the clean tail.
        clean = classifier.classify_stream(
            eight_rows.select(slice(2, None)), chunk_rows=2, keep_labels=True
        )
        for name in classifier.approach_names:
            assert (
                stream.label_vector(name) == clean.label_vector(name)
            ).all(), name

    def test_corrupt_chunk_under_retry_raises(self, toy, eight_rows):
        _rib, classifier = toy
        plan = FaultPlan((FaultSpec("corrupt", 1, attempt=0, scope="any"),))
        with pytest.raises(WorkerError) as excinfo:
            classifier.classify_stream(
                eight_rows, chunk_rows=2, n_workers=2,
                policy=FAST_RETRY, fault_injector=plan,
            )
        assert excinfo.value.chunk_index == 1

    def test_seeded_crash_storm_recovers(self, toy):
        _rib, classifier = toy
        table = flow_table([("60.0.5.5", 100), ("20.0.0.9", 200)] * 16)
        clean = classifier.classify_stream(
            table, chunk_rows=2, keep_labels=True
        )
        plan = FaultPlan.from_rates(11, 16, crash_rate=0.3)
        assert any(f.kind == "crash" for f in plan.faults)
        stream = classifier.classify_stream(
            table, chunk_rows=2, n_workers=2, keep_labels=True,
            policy=FAST_RETRY, fault_injector=plan,
        )
        assert stream.failures.chunks_retried == sum(
            1 for f in plan.faults if f.kind == "crash"
        )
        assert stream.complete
        for name in classifier.approach_names:
            assert (
                stream.label_vector(name) == clean.label_vector(name)
            ).all(), name

    def test_globals_restored_after_runs(self, toy, eight_rows):
        _rib, classifier = toy
        before = (
            classifier_mod._STREAM_CLASSIFIER,
            classifier_mod._STREAM_TABLE,
            classifier_mod._STREAM_INJECTOR,
        )
        classifier.classify_stream(eight_rows, chunk_rows=2, n_workers=2)
        classifier.classify_stream(
            eight_rows, chunk_rows=2, n_workers=2, policy=FAST_RETRY
        )
        after = (
            classifier_mod._STREAM_CLASSIFIER,
            classifier_mod._STREAM_TABLE,
            classifier_mod._STREAM_INJECTOR,
        )
        assert after == before

    def test_supervised_chunk_iterable(self, toy, eight_rows):
        _rib, classifier = toy
        clean = classifier.classify_stream(
            eight_rows, chunk_rows=2, keep_labels=True
        )
        plan = FaultPlan((FaultSpec("crash", 2),))
        stream = classifier.classify_stream(
            eight_rows.iter_chunks(2), n_workers=2, keep_labels=True,
            policy=FAST_RETRY, fault_injector=plan,
        )
        assert stream.failures.chunks_retried == 1
        for name in classifier.approach_names:
            assert (
                stream.label_vector(name) == clean.label_vector(name)
            ).all(), name


class TestWorldIntegration:
    def test_world_optional_fields(self, bgp_only_world):
        assert bgp_only_world.scenario is None
        assert bgp_only_world.result is None
        fields = {
            f.name: f for f in World.__dataclass_fields__.values()
        }
        assert fields["scenario"].default is None
        assert fields["result"].default is None

    def test_classify_world_stream_policy(self, tiny_world):
        stream = classify_world_stream(
            tiny_world, n_workers=2, chunk_rows=2000, policy="retry"
        )
        assert stream.n_flows == len(tiny_world.scenario.flows)
        assert stream.complete
        assert not stream.failures

    def test_classify_world_stream_requires_traffic(self, bgp_only_world):
        with pytest.raises(ValueError):
            classify_world_stream(bgp_only_world)


class TestIngestFaults:
    def test_corrupt_file_deterministic(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("\n".join(f"line-{i:03d}-payload" for i in range(30)) + "\n")
        hit_a = corrupt_file(path, rate=0.2, seed=5)
        path.write_text("\n".join(f"line-{i:03d}-payload" for i in range(30)) + "\n")
        hit_b = corrupt_file(path, rate=0.2, seed=5)
        assert hit_a == hit_b
        assert hit_a, "seeded corruption should hit at least one line"

    def test_corrupted_csv_quarantine_roundtrip(self, toy, tmp_path):
        _rib, classifier = toy
        table = flow_table(
            [("60.0.5.5", 100), ("20.0.0.9", 200)] * 10
        )
        path = tmp_path / "flows.csv"
        save_flows_csv(table, path)
        corrupted = corrupt_file(
            path, positions=(3, 8), rate=0.15, seed=3, mode="truncate"
        )
        quarantine = Quarantine(source=str(path))
        flows = load_flows_csv(
            path, on_error="quarantine", quarantine=quarantine
        )
        assert quarantine.line_numbers == corrupted
        assert len(flows) == 20 - len(corrupted)
        # The surviving rows classify cleanly.
        result = classifier.classify(flows)
        assert result.label_vector("full").size == len(flows)


class TestCLIClassify:
    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["classify", "flows.csv"])
        assert args.policy is None
        assert args.on_error == "raise"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["classify", "flows.csv", "--policy", "explode"]
            )

    def test_classify_quarantined_csv(self, tiny_world, tmp_path, capsys):
        from repro.cli import main

        flows = tiny_world.scenario.flows.select(np.arange(50))
        path = tmp_path / "flows.csv"
        save_flows_csv(flows, path)
        corrupted = corrupt_file(path, positions=(4, 9), mode="truncate")
        code = main(
            [
                "classify", str(path), "--preset", "tiny",
                "--on-error", "quarantine", "--policy", "degrade",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert f"classified {50 - len(corrupted)} flows" in captured.out
        assert "quarantined 2 record(s)" in captured.err
        assert "line 4" in captured.err and "line 9" in captured.err

    def test_classify_strict_csv_fails(self, tiny_world, tmp_path, capsys):
        from repro.cli import main

        flows = tiny_world.scenario.flows.select(np.arange(10))
        path = tmp_path / "flows.csv"
        save_flows_csv(flows, path)
        corrupt_file(path, positions=(5,), mode="truncate")
        assert main(["classify", str(path), "--preset", "tiny"]) == 2
        assert "cannot load" in capsys.readouterr().err


@pytest.mark.skipif(
    os.environ.get("MP_START_METHOD", "") not in ("", "fork", "spawn"),
    reason="unknown start method override",
)
class TestStartMethodOverride:
    def test_env_override_respected(self, toy, eight_rows, monkeypatch):
        _rib, classifier = toy
        method = os.environ.get("MP_START_METHOD") or "fork"
        monkeypatch.setenv("MP_START_METHOD", method)
        stream = classifier.classify_stream(
            eight_rows, chunk_rows=2, n_workers=2, policy=FAST_RETRY
        )
        assert stream.n_flows == len(eight_rows)
        assert stream.complete
