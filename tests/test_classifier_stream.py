"""Matrix-kernel equivalence, streaming, and stats tests.

The vectorised validity-matrix engine must be label-identical to the
historical per-member loop, and the chunked/parallel streaming path
must aggregate to exactly what a single-shot ``classify`` produces.
"""

import numpy as np
import pytest

from repro.bgp.messages import RouteObservation
from repro.bgp.rib import GlobalRIB
from repro.cones.full_cone import FullConeValidSpace
from repro.cones.naive import NaiveValidSpace
from repro.core import (
    SpoofingClassifier,
    StreamClassificationResult,
    TrafficClass,
    summarize_chunk,
)
from repro.ixp.flows import PROTO_TCP, FlowTable, TruthLabel
from repro.net.addr import addr_to_int
from repro.net.prefix import Prefix


def obs(prefix, *path):
    return RouteObservation(Prefix.parse(prefix), tuple(path), "rrc00")


@pytest.fixture()
def toy():
    rib = GlobalRIB()
    rib.add(obs("60.0.0.0/16", 20, 1, 10, 100))
    rib.add(obs("20.0.0.0/16", 10, 1, 20, 200))
    classifier = SpoofingClassifier(
        rib, {"naive": NaiveValidSpace(rib), "full": FullConeValidSpace(rib)}
    )
    return rib, classifier


def flow_table(rows):
    """rows: list of (src_text, member)."""
    n = len(rows)
    return FlowTable(
        src=np.array([addr_to_int(r[0]) for r in rows], dtype=np.uint64),
        dst=np.full(n, addr_to_int("20.0.0.1"), dtype=np.uint64),
        proto=np.full(n, PROTO_TCP),
        src_port=np.full(n, 1000),
        dst_port=np.full(n, 80),
        packets=np.full(n, 2),
        bytes=np.full(n, 120),
        member=np.array([r[1] for r in rows], dtype=np.int64),
        dst_member=np.full(n, 20, dtype=np.int64),
        time=np.arange(n, dtype=np.int64),
        truth=np.full(n, int(TruthLabel.LEGIT), dtype=np.uint8),
    )


class TestEngineEquivalence:
    def test_loop_and_matrix_identical_on_seeded_world(self, tiny_world):
        classifier = tiny_world.classifier
        flows = tiny_world.scenario.flows
        matrix = classifier.classify(flows, engine="matrix")
        loop = classifier.classify(flows, engine="loop")
        for name in classifier.approach_names:
            assert (
                matrix.label_vector(name) == loop.label_vector(name)
            ).all(), name

    def test_unknown_engine_rejected(self, toy):
        _rib, classifier = toy
        with pytest.raises(ValueError):
            classifier.classify(flow_table([("60.0.5.5", 100)]), engine="gpu")

    def test_empty_flow_table(self, toy):
        _rib, classifier = toy
        for engine in ("matrix", "loop"):
            result = classifier.classify(FlowTable.empty(), engine=engine)
            for name in classifier.approach_names:
                assert result.label_vector(name).size == 0
            assert result.stats.n_flows == 0

    def test_member_absent_from_bgp_all_routed_invalid(self, toy):
        # AS 9999 was never observed in BGP: every routed flow it
        # injects is Invalid (zero validity row), under both engines.
        _rib, classifier = toy
        table = flow_table(
            [("60.0.5.5", 9999), ("20.0.0.9", 9999), ("9.9.9.9", 9999)]
        )
        for engine in ("matrix", "loop"):
            result = classifier.classify(table, engine=engine)
            for name in classifier.approach_names:
                labels = result.label_vector(name)
                assert labels[0] == int(TrafficClass.INVALID)
                assert labels[1] == int(TrafficClass.INVALID)
                assert labels[2] == int(TrafficClass.UNROUTED)

    def test_packed_matrix_matches_row_bits(self, toy):
        rib, classifier = toy
        members = [100, 200, 9999, 10]
        for approach in classifier._approaches.values():
            matrix = approach.packed_matrix(members)
            assert matrix.shape == (len(members), approach.row_bytes)
            for i, asn in enumerate(members):
                bits = np.unpackbits(matrix[i], bitorder="little")[
                    : approach._n_columns()
                ].astype(bool)
                assert (bits == approach.row_bits(asn)).all()

    def test_packed_matrix_memoised(self, toy):
        _rib, classifier = toy
        approach = classifier._approaches["full"]
        first = approach.packed_matrix(np.array([100, 200]))
        again = approach.packed_matrix(np.array([100, 200]))
        assert first is again
        other = approach.packed_matrix(np.array([200, 100]))
        assert other is not first
        approach.invalidate_cache()
        rebuilt = approach.packed_matrix(np.array([200, 100]))
        assert rebuilt is not other
        assert (rebuilt == other).all()


class TestStream:
    def test_stream_equals_single_shot(self, toy):
        _rib, classifier = toy
        table = flow_table(
            [
                ("60.0.5.5", 100),
                ("20.0.0.9", 200),
                ("60.0.5.5", 200),  # invalid under full
                ("9.9.9.9", 100),  # unrouted
                ("10.1.2.3", 100),  # bogon
                ("60.0.7.7", 10),
                ("20.0.1.1", 9999),  # unknown member → invalid
            ]
        )
        single = classifier.classify(table)
        stream = classifier.classify_stream(
            table, chunk_rows=2, keep_labels=True
        )
        assert stream.n_chunks == 4
        assert stream.n_flows == len(table)
        for name in classifier.approach_names:
            labels = single.label_vector(name)
            assert (stream.label_vector(name) == labels).all()
            for cls in TrafficClass:
                assert stream.class_counts(name)[cls] == int(
                    (labels == int(cls)).sum()
                )
                assert stream.members(name, cls) == set(
                    np.unique(table.member[labels == int(cls)]).tolist()
                )

    def test_stream_accepts_chunk_iterable(self, toy):
        _rib, classifier = toy
        table = flow_table([("60.0.5.5", 100), ("20.0.0.9", 200)])
        stream = classifier.classify_stream(table.iter_chunks(1))
        assert stream.n_chunks == 2
        assert stream.n_flows == 2

    def test_stream_empty(self, toy):
        _rib, classifier = toy
        stream = classifier.classify_stream(FlowTable.empty())
        assert stream.n_flows == 0
        assert stream.n_chunks == 0
        for name in classifier.approach_names:
            assert stream.flow_counts[name].sum() == 0

    def test_labels_not_kept_raises(self, toy):
        _rib, classifier = toy
        stream = classifier.classify_stream(
            flow_table([("60.0.5.5", 100)]), keep_labels=False
        )
        with pytest.raises(ValueError):
            stream.label_vector("full")

    def test_contribution_matches_result(self, toy):
        _rib, classifier = toy
        table = flow_table(
            [("60.0.5.5", 100), ("60.0.5.5", 200), ("10.1.2.3", 100)]
        )
        result = classifier.classify(table)
        stream = classifier.classify_stream(table, chunk_rows=2)
        for cls in (TrafficClass.BOGON, TrafficClass.INVALID):
            a = result.contribution("full", cls)
            b = stream.contribution("full", cls)
            assert a.members == b.members
            assert a.packets == b.packets
            assert a.bytes == b.bytes
            assert a.packet_share == pytest.approx(b.packet_share)

    def test_parallel_stream_equals_single_shot(self, tiny_world):
        classifier = tiny_world.classifier
        flows = tiny_world.scenario.flows
        single = classifier.classify(flows)
        parallel = classifier.classify_stream(
            flows, chunk_rows=2000, n_workers=2
        )
        assert parallel.n_flows == len(flows)
        for name in classifier.approach_names:
            labels = single.label_vector(name)
            counts = np.bincount(labels, minlength=4)
            assert (parallel.flow_counts[name] == counts).all()
            for cls in TrafficClass:
                assert parallel.members(name, cls) == set(
                    np.unique(flows.member[labels == int(cls)]).tolist()
                )


class TestStats:
    def test_classify_records_stage_stats(self, toy):
        _rib, classifier = toy
        table = flow_table([("60.0.5.5", 100), ("60.0.5.5", 200)])
        result = classifier.classify(table)
        stats = result.stats
        assert stats is not None
        assert stats.n_flows == 2
        assert set(stats.stages) == {
            "bogon",
            "lpm",
            "invalid[naive]",
            "invalid[full]",
        }
        assert stats.invalid_counts["full"] == 1
        assert all(s.rows == 2 for s in stats.stages.values())
        assert "rows/sec" in stats.render()

    def test_stats_opt_out(self, toy):
        _rib, classifier = toy
        result = classifier.classify(
            flow_table([("60.0.5.5", 100)]), collect_stats=False
        )
        assert result.stats is None

    def test_stream_merges_stats(self, toy):
        _rib, classifier = toy
        table = flow_table(
            [("60.0.5.5", 100), ("60.0.5.5", 200), ("9.9.9.9", 100)]
        )
        stream = classifier.classify_stream(table, chunk_rows=1)
        assert stream.stats.n_flows == 3
        assert stream.stats.n_chunks == 3
        assert stream.stats.stages["lpm"].rows == 3
        assert stream.stats.invalid_counts["full"] == 1

    def test_summary_merge_order_independent_counts(self, toy):
        _rib, classifier = toy
        chunks = list(
            flow_table(
                [("60.0.5.5", 100), ("60.0.5.5", 200), ("10.1.2.3", 100)]
            ).iter_chunks(1)
        )
        summaries = [summarize_chunk(classifier.classify(c)) for c in chunks]
        forward = StreamClassificationResult(classifier.approach_names)
        backward = StreamClassificationResult(classifier.approach_names)
        for s in summaries:
            forward.absorb(s)
        for s in reversed(summaries):
            backward.absorb(s)
        for name in classifier.approach_names:
            assert (forward.flow_counts[name] == backward.flow_counts[name]).all()
            assert (forward.byte_counts[name] == backward.byte_counts[name]).all()


class TestFlowChunking:
    def test_iter_chunks_roundtrip(self, toy):
        table = flow_table([("60.0.5.5", 100)] * 7)
        chunks = list(table.iter_chunks(3))
        assert [len(c) for c in chunks] == [3, 3, 1]
        rebuilt = FlowTable.concat(chunks)
        assert (rebuilt.src == table.src).all()
        assert (rebuilt.time == table.time).all()

    def test_iter_chunks_rejects_nonpositive(self, toy):
        table = flow_table([("60.0.5.5", 100)])
        with pytest.raises(ValueError):
            list(table.iter_chunks(0))
