"""The durability layer: WAL, checkpoints, atomic IO, and the daemon.

Tentpole contracts under test:

* WAL — append/replay round trip, segment rotation, torn-tail
  tolerance (and truncation on writer re-open), mid-log corruption
  refusal, seq contiguity;
* checkpoints — atomic save, sha256 + state-digest verification,
  newest-first fallback across generations, torn-tmp invisibility,
  :class:`CheckpointCorruptionError` only when *every* generation is
  damaged, pool re-arm after restore;
* daemon — window-for-window parity with the in-memory
  :class:`OnlineClassifier`, exactly-once suppression on resume,
  clean drain discarding the trailing partial window, checkpoint-write
  failures governed by the pipeline failure policy, backpressure via
  the bounded queue;
* satellites — ``merge_event_streams`` disorder quarantine and the
  atomic (never truncated) run-manifest write.
"""

from __future__ import annotations

import json
import os
import pickle

import pytest

from repro.core import FailurePolicy
from repro.errors import (
    CheckpointCorruptionError,
    DurabilityError,
    IngestError,
    Quarantine,
    WalCorruptionError,
)
from repro.obs import RunManifest
from repro.obs.metrics import current_metrics
from repro.stream import (
    CheckpointStore,
    DurableWatch,
    OnlineClassifier,
    WalWriter,
    merge_event_streams,
    recover,
    replay_wal,
)
from repro.stream.durable.wal import last_wal_seq
from repro.stream.events import RouteEvent
from repro.testing import DurabilityFaultPlan, DurabilityFaultSpec
from repro.testing.recovery import (
    WINDOW_SECONDS,
    _obs,
    synthetic_events,
    synthetic_state,
)
from repro.util import atomic_write_bytes, atomic_write_text


@pytest.fixture()
def clean_metrics():
    current_metrics().clear()
    yield
    current_metrics().clear()


def wal_events(seed=5, n_ticks=40):
    return [e for e in synthetic_events(seed, n_ticks)]


# -- atomic IO -------------------------------------------------------------


class TestAtomicIO:
    def test_write_and_replace(self, tmp_path):
        path = tmp_path / "x.json"
        atomic_write_bytes(path, b"one")
        assert path.read_bytes() == b"one"
        atomic_write_text(path, "two")
        assert path.read_text() == "two"

    def test_no_temporaries_left(self, tmp_path):
        path = tmp_path / "x.bin"
        atomic_write_bytes(path, b"payload")
        assert [p.name for p in tmp_path.iterdir()] == ["x.bin"]

    def test_failed_write_leaves_target_untouched(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "x.bin"
        atomic_write_bytes(path, b"original")

        def enospc(_fd):
            raise OSError(28, "injected disk full")

        monkeypatch.setattr(os, "fsync", enospc)
        with pytest.raises(OSError):
            atomic_write_bytes(path, b"partial")
        monkeypatch.undo()
        assert path.read_bytes() == b"original"
        assert [p.name for p in tmp_path.iterdir()] == ["x.bin"]


# -- the write-ahead log ---------------------------------------------------


class TestWal:
    def test_append_replay_roundtrip(self, tmp_path):
        events = wal_events()
        with WalWriter(tmp_path) as wal:
            seqs = [wal.append(e) for e in events]
        assert seqs == list(range(1, len(events) + 1))
        replayed = list(replay_wal(tmp_path))
        assert [seq for seq, _ in replayed] == seqs
        assert [pickle.dumps(e) for _, e in replayed] == [
            pickle.dumps(e) for e in events
        ]
        assert last_wal_seq(tmp_path) == len(events)

    def test_after_seq_suffix(self, tmp_path):
        with WalWriter(tmp_path) as wal:
            for event in wal_events():
                wal.append(event)
        suffix = list(replay_wal(tmp_path, after_seq=30))
        assert [seq for seq, _ in suffix][0] == 31

    def test_segment_rotation(self, tmp_path):
        with WalWriter(tmp_path, segment_bytes=512) as wal:
            for event in wal_events():
                wal.append(event)
        segments = sorted(tmp_path.glob("wal-*.log"))
        assert len(segments) > 1
        # every record still replays, across all segments, in order
        assert last_wal_seq(tmp_path) == len(wal_events())

    def test_torn_tail_is_dropped(self, tmp_path):
        with WalWriter(tmp_path) as wal:
            for event in wal_events():
                wal.append(event)
        tail = sorted(tmp_path.glob("wal-*.log"))[-1]
        whole = tail.read_bytes()
        tail.write_bytes(whole[:-7])  # crash mid-append
        replayed = list(replay_wal(tmp_path))
        assert len(replayed) == len(wal_events()) - 1

    def test_writer_truncates_torn_tail_before_appending(self, tmp_path):
        events = wal_events()
        with WalWriter(tmp_path) as wal:
            for event in events[:10]:
                wal.append(event)
        tail = sorted(tmp_path.glob("wal-*.log"))[-1]
        tail.write_bytes(tail.read_bytes()[:-5])
        # re-open (a restarted daemon) and append more
        with WalWriter(tmp_path) as wal:
            assert wal.last_seq == 9  # the torn 10th record is gone
            for event in events[10:]:
                wal.append(event)
        seqs = [seq for seq, _ in replay_wal(tmp_path)]
        assert seqs == list(range(1, 9 + len(events[10:]) + 1))

    def test_failed_append_leaves_log_record_aligned(
        self, tmp_path, monkeypatch
    ):
        """A partial write mid-append (ENOSPC, interruption) must not
        strand torn bytes mid-segment: the writer truncates back to
        the pre-append size so later appends and replay stay clean."""
        from repro.stream.durable import wal as wal_mod

        events = wal_events()
        with WalWriter(tmp_path) as wal:
            for event in events[:5]:
                wal.append(event)
            real_write_all = wal_mod._write_all

            def torn_write_all(handle, parts):
                real_write_all(handle, parts[:1])  # header lands…
                raise OSError(28, "No space left on device")

            monkeypatch.setattr(wal_mod, "_write_all", torn_write_all)
            with pytest.raises(OSError):
                wal.append(events[5])
            monkeypatch.setattr(wal_mod, "_write_all", real_write_all)
            # the writer is still usable and the log record-aligned
            for event in events[5:]:
                wal.append(event)
        seqs = [seq for seq, _ in replay_wal(tmp_path)]
        assert seqs == list(range(1, len(events) + 1))

    def test_mid_log_corruption_raises(self, tmp_path):
        with WalWriter(tmp_path, segment_bytes=512) as wal:
            for event in wal_events():
                wal.append(event)
        first = sorted(tmp_path.glob("wal-*.log"))[0]
        blob = bytearray(first.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        first.write_bytes(bytes(blob))
        with pytest.raises(WalCorruptionError):
            list(replay_wal(tmp_path))

    def test_sync_every_batches_fsync(self, tmp_path):
        with WalWriter(tmp_path, sync_every=16) as wal:
            for event in wal_events():
                wal.append(event)
            wal.sync()
        assert last_wal_seq(tmp_path) == len(wal_events())


# -- checkpoints -----------------------------------------------------------


def window_digests(windows):
    return [
        (w.index, w.n_route_events, w.n_chunks, w.n_flows,
         dict(w.result.stats.invalid_counts))
        for w in windows
    ]


class TestCheckpointStore:
    def test_save_load_roundtrip(self, tmp_path):
        state = synthetic_state()
        digest = state.state_digest()
        store = CheckpointStore(tmp_path)
        store.save(state, last_seq=17, last_window=3, last_timestamp=350)
        loaded = store.load_latest()
        assert loaded is not None
        assert loaded.last_seq == 17
        assert loaded.last_window == 3
        assert loaded.last_timestamp == 350
        assert loaded.state.state_digest() == digest

    def test_restore_rearms_classifier(self, tmp_path):
        state = synthetic_state()
        store = CheckpointStore(tmp_path)
        store.save(state, last_seq=1, last_window=0, last_timestamp=None)
        before = state.classifier.state_version
        loaded = store.load_latest()
        # restored classifier must not collide with any pre-crash
        # pickle a long-lived worker pool may still hold
        assert loaded.state.classifier.state_version > before

    def test_prune_keeps_newest(self, tmp_path):
        state = synthetic_state()
        store = CheckpointStore(tmp_path, keep=2)
        for seq in (5, 10, 15, 20):
            store.save(state, last_seq=seq, last_window=0, last_timestamp=None)
        names = sorted(p.name for p in tmp_path.glob("checkpoint-*.ckpt"))
        assert names == [
            "checkpoint-000000000015.ckpt",
            "checkpoint-000000000020.ckpt",
        ]

    def test_fallback_to_previous_generation(self, tmp_path):
        state = synthetic_state()
        store = CheckpointStore(tmp_path)
        store.save(state, last_seq=5, last_window=1, last_timestamp=100)
        newest = store.save(
            state, last_seq=9, last_window=2, last_timestamp=200
        )
        newest.write_bytes(newest.read_bytes()[:-40])  # damage the newest
        loaded = store.load_latest()
        assert loaded.last_seq == 5  # silently fell back

    def test_torn_tmp_is_invisible(self, tmp_path):
        state = synthetic_state()
        store = CheckpointStore(tmp_path)
        store.save(state, last_seq=5, last_window=1, last_timestamp=100)
        (tmp_path / "checkpoint-000000000009.ckpt.123.tmp").write_bytes(
            b"\xde\xad" * 16
        )
        loaded = store.load_latest()
        assert loaded.last_seq == 5

    def test_all_generations_damaged_raises(self, tmp_path):
        state = synthetic_state()
        store = CheckpointStore(tmp_path)
        for seq in (5, 9):
            store.save(state, last_seq=seq, last_window=0, last_timestamp=None)
        for path in tmp_path.glob("checkpoint-*.ckpt"):
            path.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointCorruptionError) as err:
            store.load_latest()
        assert len(err.value.context["failures"]) == 2

    def test_empty_directory_is_a_fresh_start(self, tmp_path):
        assert CheckpointStore(tmp_path).load_latest() is None
        point = recover(tmp_path)
        assert point.checkpoint is None
        assert point.emitted_through == -1
        assert point.replay_events == 0


# -- the durable daemon ----------------------------------------------------


class TestDurableWatch:
    def test_window_parity_with_online_classifier(self, tmp_path):
        events = synthetic_events(23, 80)
        reference = window_digests(
            OnlineClassifier(synthetic_state(), WINDOW_SECONDS).run(
                iter(events)
            )
        )
        watch = DurableWatch(
            synthetic_state(),
            WINDOW_SECONDS,
            checkpoint_dir=tmp_path,
            checkpoint_every=2,
        )
        assert window_digests(watch.run(iter(events))) == reference
        assert watch.wal.last_seq == len(events)

    def test_resume_emits_nothing_new(self, tmp_path, clean_metrics):
        events = synthetic_events(23, 80)
        first = DurableWatch(
            synthetic_state(), WINDOW_SECONDS, checkpoint_dir=tmp_path
        )
        emitted = list(first.run(iter(events)))
        assert emitted
        point = recover(tmp_path)
        assert point.emitted_through == emitted[-1].index
        resumed = DurableWatch(
            point.checkpoint.state,
            WINDOW_SECONDS,
            checkpoint_dir=tmp_path,
            resume=point,
        )
        assert list(resumed.run(iter(events))) == []
        assert (
            resumed.state.state_digest() == first.state.state_digest()
        )

    def test_resume_after_positional_cut(self, tmp_path):
        """Killing after window k: the suffix re-emits k+1.. bit-equal."""
        events = synthetic_events(23, 80)
        reference = window_digests(
            OnlineClassifier(synthetic_state(), WINDOW_SECONDS).run(
                iter(events)
            )
        )
        first = DurableWatch(
            synthetic_state(), WINDOW_SECONDS, checkpoint_dir=tmp_path
        )
        head = []
        run = first.run(iter(events))
        for window in run:
            head.append(window)
            if len(head) == 2:
                run.close()  # abandon mid-stream (no drain, like a kill)
                break
        first.wal.close()
        point = recover(tmp_path)
        resumed = DurableWatch(
            point.checkpoint.state,
            WINDOW_SECONDS,
            checkpoint_dir=tmp_path,
            resume=point,
        )
        tail = list(resumed.run(iter(events)))
        assert window_digests(head) + window_digests(tail) == reference

    def test_drain_discards_trailing_partial_window(
        self, tmp_path, clean_metrics
    ):
        events = synthetic_events(23, 80)
        watch = DurableWatch(
            synthetic_state(), WINDOW_SECONDS, checkpoint_dir=tmp_path
        )
        run = watch.run(iter(events))
        first = next(run)
        watch.request_drain()
        drained = list(run)
        # whatever window was in flight when the drain hit is not
        # emitted — a resumed run recomputes it in full instead
        point = recover(tmp_path)
        emitted = [first.index] + [w.index for w in drained]
        assert point.emitted_through == emitted[-1]
        resumed = DurableWatch(
            point.checkpoint.state,
            WINDOW_SECONDS,
            checkpoint_dir=tmp_path,
            resume=point,
        )
        tail = [w.index for w in resumed.run(iter(events))]
        assert not set(tail) & set(emitted)
        reference = [
            w.index
            for w in OnlineClassifier(
                synthetic_state(), WINDOW_SECONDS
            ).run(iter(events))
        ]
        assert emitted + tail == reference

    def test_checkpoint_failure_degrade_counts_and_continues(
        self, tmp_path, clean_metrics
    ):
        plan = DurabilityFaultPlan(
            (DurabilityFaultSpec("disk_full", "checkpoint_begin", 0),)
        )
        watch = DurableWatch(
            synthetic_state(),
            WINDOW_SECONDS,
            checkpoint_dir=tmp_path,
            policy=FailurePolicy(mode="degrade", backoff_base=0.0),
            fault_hook=plan,
        )
        emitted = list(watch.run(iter(synthetic_events(23, 60))))
        assert emitted  # the watch survived every failed checkpoint
        assert watch.checkpoint_failures == len(emitted)
        assert not list(tmp_path.glob("checkpoint-*.ckpt"))
        # recovery still works: no checkpoint, but the cursor + WAL do
        point = recover(tmp_path)
        assert point.checkpoint is None
        assert point.emitted_through == emitted[-1].index

    def test_checkpoint_failure_fail_fast_raises(self, tmp_path):
        plan = DurabilityFaultPlan(
            (DurabilityFaultSpec("disk_full", "checkpoint_begin", 0),)
        )
        watch = DurableWatch(
            synthetic_state(),
            WINDOW_SECONDS,
            checkpoint_dir=tmp_path,
            policy=FailurePolicy(mode="fail_fast"),
            fault_hook=plan,
        )
        with pytest.raises(DurabilityError):
            list(watch.run(iter(synthetic_events(23, 60))))

    def test_checkpoint_failure_retry_recovers(self, tmp_path):
        # ENOSPC on the first visit only; the retry succeeds
        plan = DurabilityFaultPlan(
            (DurabilityFaultSpec("disk_full", "checkpoint_begin", 1),)
        )
        watch = DurableWatch(
            synthetic_state(),
            WINDOW_SECONDS,
            checkpoint_dir=tmp_path,
            policy=FailurePolicy(
                mode="retry", max_retries=2, backoff_base=0.0
            ),
            fault_hook=plan,
        )
        emitted = list(watch.run(iter(synthetic_events(23, 60))))
        assert emitted
        assert watch.checkpoint_failures == 0
        assert list(tmp_path.glob("checkpoint-*.ckpt"))

    def test_bounded_queue_backpressure(self, tmp_path, clean_metrics):
        events = synthetic_events(23, 80)
        reference = window_digests(
            OnlineClassifier(synthetic_state(), WINDOW_SECONDS).run(
                iter(events)
            )
        )
        watch = DurableWatch(
            synthetic_state(),
            WINDOW_SECONDS,
            checkpoint_dir=tmp_path,
            queue_depth=2,  # ingest must block on the consumer
        )
        assert window_digests(watch.run(iter(events))) == reference

    def test_cursor_outruns_sparse_checkpoints(self, tmp_path):
        """checkpoint_every=4: the cursor still suppresses re-emission."""
        events = synthetic_events(23, 80)
        first = DurableWatch(
            synthetic_state(),
            WINDOW_SECONDS,
            checkpoint_dir=tmp_path,
            checkpoint_every=4,
        )
        emitted = [w.index for w in first.run(iter(events))]
        point = recover(tmp_path)
        # the checkpoint may be several windows behind the cursor
        assert point.emitted_through == emitted[-1]
        state = (
            point.checkpoint.state
            if point.checkpoint is not None
            else synthetic_state()
        )
        resumed = DurableWatch(
            state, WINDOW_SECONDS, checkpoint_dir=tmp_path, resume=point
        )
        assert list(resumed.run(iter(events))) == []

    def test_rejects_bad_parameters(self, tmp_path):
        with pytest.raises(ValueError):
            DurableWatch(
                synthetic_state(),
                WINDOW_SECONDS,
                checkpoint_dir=tmp_path,
                checkpoint_every=0,
            )
        with pytest.raises(ValueError):
            DurableWatch(
                synthetic_state(),
                WINDOW_SECONDS,
                checkpoint_dir=tmp_path,
                queue_depth=0,
            )


# -- satellite: merge-stream disorder policy --------------------------------


def ts_events(*stamps):
    return [
        RouteEvent(_obs("60.0.0.0/16", 20, 1, ts=ts)) for ts in stamps
    ]


class TestMergeDisorderPolicy:
    def test_strict_default_raises(self):
        bad = ts_events(10, 5)  # one stream violating its own order
        with pytest.raises(IngestError):
            list(merge_event_streams(bad))

    def test_quarantine_drops_and_counts(self, clean_metrics):
        bad = ts_events(10, 5, 12)
        quarantine = Quarantine(source="stream")
        merged = list(
            merge_event_streams(
                bad, on_disorder="quarantine", quarantine=quarantine
            )
        )
        assert [e.timestamp for e in merged] == [10, 12]
        assert quarantine.count == 1
        assert quarantine.reasons == {"timestamp regression": 1}
        assert (
            current_metrics()
            .counter("ingest.quarantined_events")
            .value
            == 1
        )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            merge_event_streams(ts_events(1), on_disorder="ignore")


# -- satellite: atomic manifests -------------------------------------------


class TestManifestAtomicity:
    def test_write_leaves_no_temporaries(self, tmp_path):
        manifest = RunManifest.create("durability-test", seed=1)
        manifest.finish(exit_code=0)
        path = manifest.write(tmp_path / "run.manifest.json")
        assert json.loads(path.read_text())["command"] == "durability-test"
        assert [p.name for p in tmp_path.iterdir()] == ["run.manifest.json"]

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = tmp_path / "run.manifest.json"
        for attempt in (1, 2):
            manifest = RunManifest.create("durability-test", seed=attempt)
            manifest.finish(exit_code=0)
            manifest.write(path)
        assert json.loads(path.read_text())["seed"] == 2
