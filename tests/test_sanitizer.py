"""Runtime concurrency sanitizer: fsync protocol, lock order, access
tracing.

Each monitor is exercised both ways — a deliberately broken subject
(torn write, lock-order inversion, racy toy class) must be caught, and
a conforming subject must pass cleanly — plus the real integration
point: ``atomic_write_bytes`` under interposition.
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.testing.sanitizer import (
    ConcurrencySanitizer,
    FsyncProtocolSanitizer,
    LockOrderSanitizer,
    ProtocolSanitizer,
    SanitizerError,
    ThreadAccessTracer,
)
from repro.util.atomicio import atomic_write_bytes

#: These tests arm private monitor instances and violate them on
#: purpose — the session-level sanitizer must not double-report that.
pytestmark = pytest.mark.sanitizer_self_test


def wal_events(seed=5, n_ticks=40):
    from repro.testing.recovery import synthetic_events

    return list(synthetic_events(seed, n_ticks))


@pytest.fixture()
def fsync_sanitizer():
    sanitizer = FsyncProtocolSanitizer()
    sanitizer.install()
    yield sanitizer
    sanitizer.uninstall()


@pytest.fixture()
def lock_sanitizer():
    sanitizer = LockOrderSanitizer()
    sanitizer.install()
    yield sanitizer
    sanitizer.uninstall()


class TestFsyncProtocol:
    def test_torn_write_is_caught(self, tmp_path, fsync_sanitizer):
        """Promoting a .tmp file that was never fsynced is a torn-write
        window: the rename can land while the payload has not."""
        final = tmp_path / "state.json"
        tmp = tmp_path / f"state.json.{os.getpid()}.tmp"
        tmp.write_bytes(b"payload")
        os.replace(tmp, final)
        assert len(fsync_sanitizer.violations) == 1
        violation = fsync_sanitizer.violations[0]
        assert violation["kind"] == "replace-without-fsync"
        assert violation["dst"].endswith("state.json")

    def test_fsynced_write_passes(self, tmp_path, fsync_sanitizer):
        final = tmp_path / "state.json"
        tmp = tmp_path / f"state.json.{os.getpid()}.tmp"
        with open(tmp, "wb") as handle:
            handle.write(b"payload")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
        assert fsync_sanitizer.violations == []

    def test_atomic_write_durable_passes(self, tmp_path, fsync_sanitizer):
        atomic_write_bytes(tmp_path / "state.json", b"x", durable=True)
        assert fsync_sanitizer.violations == []

    def test_atomic_write_non_durable_is_caught(
        self, tmp_path, fsync_sanitizer
    ):
        """The injected fsync-skip: ``durable=False`` on a non-advisory
        target follows the .tmp protocol without the fsync."""
        atomic_write_bytes(tmp_path / "state.json", b"x", durable=False)
        assert [v["kind"] for v in fsync_sanitizer.violations] == [
            "replace-without-fsync"
        ]

    def test_advisory_cursor_is_exempt(self, tmp_path, fsync_sanitizer):
        """cursor.json is advisory by design (recovery falls back to
        the fsynced checkpoint anchor), so durable=False is fine."""
        atomic_write_bytes(tmp_path / "cursor.json", b"x", durable=False)
        assert fsync_sanitizer.violations == []

    def test_unrelated_rename_is_ignored(self, tmp_path, fsync_sanitizer):
        """Renames outside the ``<name>.<pid>.tmp`` signature are not
        part of the durability protocol."""
        src = tmp_path / "a.txt"
        src.write_bytes(b"x")
        os.replace(src, tmp_path / "b.txt")
        assert fsync_sanitizer.violations == []


class TestLockOrder:
    def test_inversion_is_caught(self, lock_sanitizer):
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_a:
                pass
        kinds = [v["kind"] for v in lock_sanitizer.violations]
        assert kinds == ["lock-order-inversion"]

    def test_consistent_order_passes(self, lock_sanitizer):
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        for _ in range(3):
            with lock_a:
                with lock_b:
                    pass
        assert lock_sanitizer.violations == []
        graph = lock_sanitizer.graph_json()
        assert len(graph["edges"]) == 1

    def test_cross_thread_inversion_is_caught(self, lock_sanitizer):
        lock_a = threading.Lock()
        lock_b = threading.Lock()

        def forward():
            with lock_a:
                with lock_b:
                    pass

        def backward():
            with lock_b:
                with lock_a:
                    pass

        worker = threading.Thread(target=forward)
        worker.start()
        worker.join()
        backward()
        assert any(
            v["kind"] == "lock-order-inversion"
            for v in lock_sanitizer.violations
        )

    def test_stdlib_locks_stay_unwrapped(self, lock_sanitizer):
        """Locks born in unmonitored code (e.g. multiprocessing's
        resource tracker) must keep their full native surface."""
        import queue

        channel = queue.Queue()
        assert hasattr(channel.mutex, "_at_fork_reinit")
        assert not type(channel.mutex).__name__ == "_TracedLock"


class _RacyCounter:
    """Toy class with an undeclared cross-thread write."""

    def __init__(self) -> None:
        self.count = 0

    def bump(self) -> None:
        self.count += 1


class _DeclaredCounter(_RacyCounter):
    _CONCURRENCY_CONTRACT = {"count": "single-writer:bumper"}


class TestThreadAccessTracer:
    def _bump_from_thread(self, obj, name="bumper"):
        worker = threading.Thread(target=obj.bump, name=name)
        worker.start()
        worker.join()

    def test_undeclared_sharing_is_caught(self):
        tracer = ThreadAccessTracer()
        counter = _RacyCounter()
        tracer.watch(counter, contract={})
        counter.bump()  # main touches it too -> genuinely shared
        self._bump_from_thread(counter)
        tracer.assert_contracts()
        assert any(
            v["attr"] == "count" and v["declared"] == "<undeclared>"
            for v in tracer.violations
        )

    def test_declared_single_writer_passes(self):
        tracer = ThreadAccessTracer()
        counter = _DeclaredCounter()
        tracer.watch(counter)
        assert counter.count == 0  # reads from main are fine
        self._bump_from_thread(counter)
        tracer.assert_contracts()
        assert tracer.violations == []

    def test_wrong_writer_thread_is_caught(self):
        tracer = ThreadAccessTracer()
        counter = _DeclaredCounter()
        tracer.watch(counter)
        self._bump_from_thread(counter, name="intruder")
        tracer.assert_contracts()
        assert any(
            v["attr"] == "count" and "intruder" in v["observed_writers"]
            for v in tracer.violations
        )

    def test_init_writes_are_excluded(self):
        tracer = ThreadAccessTracer()
        counter = _RacyCounter()
        tracer.watch(counter, contract={})
        counter.count = 5  # still only the creator: init phase
        worker = threading.Thread(target=lambda: counter.count)
        worker.start()
        worker.join()
        tracer.assert_contracts()
        assert tracer.violations == []

    def test_lock_token_is_trusted(self):
        tracer = ThreadAccessTracer()
        counter = _RacyCounter()
        tracer.watch(counter, contract={"count": "lock:_lock"})
        counter.bump()
        self._bump_from_thread(counter)
        tracer.assert_contracts()
        assert tracer.violations == []

    def test_single_writer_star_allows_one_thread(self):
        tracer = ThreadAccessTracer()
        counter = _RacyCounter()
        tracer.watch(counter, contract={"count": "single-writer:*"})
        self._bump_from_thread(counter)
        self._bump_from_thread(counter)
        tracer.assert_contracts()
        assert tracer.violations == []

    def test_single_writer_star_rejects_two_threads(self):
        tracer = ThreadAccessTracer()
        counter = _RacyCounter()
        tracer.watch(counter, contract={"count": "single-writer:*"})
        self._bump_from_thread(counter, name="first")
        self._bump_from_thread(counter, name="second")
        tracer.assert_contracts()
        assert len(tracer.violations) == 1


@pytest.fixture()
def protocol_sanitizer():
    sanitizer = ProtocolSanitizer()
    sanitizer.install()
    yield sanitizer
    sanitizer.uninstall()


class TestProtocolSanitizer:
    """Runtime mirror of the RL3xx protocol machines."""

    def test_segment_leak_is_caught(self, tmp_path):
        from repro.util import shmseg

        sanitizer = ProtocolSanitizer()
        sanitizer.install()
        segment = shmseg.create_segment(64, purpose="leak-me")
        sanitizer.uninstall()
        assert any(
            v["protocol"] == "shm-segment" and v["kind"] == "segment-leaked"
            for v in sanitizer.violations
        )
        shmseg.release_segment(segment, unlink=True)

    def test_segment_double_release_is_caught(self, protocol_sanitizer):
        from repro.util import shmseg

        segment = shmseg.create_segment(64, purpose="double")
        shmseg.release_segment(segment, unlink=True)
        try:
            shmseg.release_segment(segment, unlink=False)
        except Exception:
            pass  # the double close may legitimately raise
        assert any(
            v["kind"] == "segment-double-release"
            for v in protocol_sanitizer.violations
        )

    def test_paired_segment_lifecycle_passes(self, tmp_path):
        from repro.util import shmseg

        sanitizer = ProtocolSanitizer()
        sanitizer.install()
        owner = shmseg.create_segment(64, purpose="ok")
        attacher = shmseg.attach_segment(owner.name)
        shmseg.release_segment(attacher, unlink=False)
        shmseg.release_segment(owner, unlink=True)
        sanitizer.uninstall()
        assert sanitizer.violations == []

    def test_checkpoint_outrunning_log_is_caught(
        self, tmp_path, protocol_sanitizer
    ):
        from repro.stream import CheckpointStore, WalWriter
        from repro.testing.recovery import synthetic_state

        with WalWriter(tmp_path / "wal", sync_every=10_000) as wal:
            for event in wal_events()[:5]:
                wal.append(event)
            # five appends, zero syncs: the checkpoint claims a seq
            # the log has not made durable yet.
            store = CheckpointStore(tmp_path / "ckpt")
            store.save(
                synthetic_state(),
                last_seq=5,
                last_window=1,
                last_timestamp=1,
            )
        assert any(
            v["protocol"] == "wal-commit"
            and v["kind"] == "checkpoint-outran-log"
            for v in protocol_sanitizer.violations
        )

    def test_synced_checkpoint_passes(self, tmp_path, protocol_sanitizer):
        from repro.stream import CheckpointStore, WalWriter
        from repro.testing.recovery import synthetic_state

        with WalWriter(tmp_path / "wal", sync_every=10_000) as wal:
            for event in wal_events()[:5]:
                wal.append(event)
            wal.sync()
            store = CheckpointStore(tmp_path / "ckpt")
            store.save(
                synthetic_state(),
                last_seq=5,
                last_window=1,
                last_timestamp=1,
            )
        assert protocol_sanitizer.violations == []

    def test_submit_to_drained_pool_is_caught(self, protocol_sanitizer):
        import multiprocessing

        pool = multiprocessing.get_context("spawn").Pool(1)
        pool.terminate()
        pool.join()
        with pytest.raises(ValueError):
            pool.apply_async(int, ("1",))
        assert any(
            v["protocol"] == "supervised-pool"
            and v["kind"] == "submit-to-drained-pool"
            for v in protocol_sanitizer.violations
        )

    def test_live_pool_submit_passes(self, protocol_sanitizer):
        import multiprocessing

        with multiprocessing.get_context("spawn").Pool(1) as pool:
            assert pool.apply(int, ("7",)) == 7
        assert protocol_sanitizer.violations == []

    def test_mirrors_every_declared_protocol(self):
        """The runtime table must cover exactly the machines reprolint
        declares — adding a ProtocolSpec without a runtime mirror (or
        vice versa) is a drift this test pins."""
        import sys

        sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
        try:
            from tools.reprolint.protocols import PROTOCOLS
        finally:
            sys.path.pop(0)
        assert tuple(spec.name for spec in PROTOCOLS) == (
            ProtocolSanitizer.PROTOCOL_NAMES
        )


class TestFacade:
    def test_check_raises_and_artifacts_dump(self, tmp_path, monkeypatch):
        sanitizer = ConcurrencySanitizer()
        sanitizer.install()
        try:
            tmp = tmp_path / f"state.json.{os.getpid()}.tmp"
            tmp.write_bytes(b"payload")
            os.replace(tmp, tmp_path / "state.json")
            with pytest.raises(SanitizerError) as excinfo:
                sanitizer.check()
        finally:
            sanitizer.uninstall()
        assert excinfo.value.context["violations"]
        artifacts = tmp_path / "artifacts"
        sanitizer.write_artifacts(artifacts)
        for name in (
            "lock_order_graph.json",
            "thread_access_trace.json",
            "fsync_violations.json",
        ):
            payload = json.loads((artifacts / name).read_text())
            assert payload is not None

    def test_clean_run_passes(self, tmp_path):
        sanitizer = ConcurrencySanitizer()
        sanitizer.install()
        try:
            atomic_write_bytes(tmp_path / "ok.json", b"x", durable=True)
            lock = threading.Lock()
            with lock:
                pass
            sanitizer.check()
        finally:
            sanitizer.uninstall()
