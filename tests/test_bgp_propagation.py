"""Tests for Gao–Rexford route propagation on the micro topology."""

import pytest

from repro.bgp.propagation import RoutePropagator, RouteType


@pytest.fixture()
def propagator(micro_topology):
    return RoutePropagator(micro_topology)


class TestReachability:
    def test_everyone_reaches_everyone_by_default(self, propagator, micro_topology):
        for origin in micro_topology.ases:
            outcome = propagator.propagate(origin)
            for asn in micro_topology.ases:
                assert outcome.has_route(asn), (origin, asn)

    def test_origin_route_type(self, propagator):
        outcome = propagator.propagate(5)
        assert outcome.route_type(5) is RouteType.CUSTOMER

    def test_route_types_follow_hierarchy(self, propagator):
        # Origin = C1 (AS5, customer of T2a=3 which is customer of T1a=1).
        outcome = propagator.propagate(5)
        assert outcome.route_type(3) is RouteType.CUSTOMER
        assert outcome.route_type(1) is RouteType.CUSTOMER
        # T1b learns via the T1 peering.
        assert outcome.route_type(2) is RouteType.PEER
        # C3 (under T1b) learns downhill.
        assert outcome.route_type(7) is RouteType.PROVIDER


class TestPaths:
    def test_path_is_valley_free_chain(self, propagator):
        outcome = propagator.propagate(5)
        assert outcome.path_from(7) == (7, 4, 2, 1, 3, 5)

    def test_path_from_origin_is_singleton(self, propagator):
        outcome = propagator.propagate(5)
        assert outcome.path_from(5) == (5,)

    def test_path_ends_at_origin(self, propagator, micro_topology):
        for origin in micro_topology.ases:
            outcome = propagator.propagate(origin)
            for asn in micro_topology.ases:
                path = outcome.path_from(asn)
                assert path is not None
                assert path[0] == asn
                assert path[-1] == origin

    def test_paths_use_real_links(self, propagator, micro_topology):
        outcome = propagator.propagate(6)
        for asn in micro_topology.ases:
            path = outcome.path_from(asn)
            for left, right in zip(path, path[1:]):
                assert micro_topology.relationship(left, right) is not None

    def test_routed_asns(self, propagator, micro_topology):
        outcome = propagator.propagate(5)
        assert set(outcome.routed_asns()) == set(micro_topology.ases)


class TestValleyFreeness:
    def _slope(self, topo, left, right):
        """+1 uphill (left customer of right), -1 downhill, 0 peer/sib."""
        from repro.topology.model import Relationship

        rel = topo.relationship(left, right)
        if rel is Relationship.CUSTOMER_OF:
            return +1
        if rel is Relationship.PROVIDER_OF:
            return -1
        return 0

    def test_no_valleys_anywhere(self, propagator, micro_topology):
        # Read paths announcement-wise (origin → receiver): must climb,
        # cross at most one flat (peer) link, then descend.
        for origin in micro_topology.ases:
            outcome = propagator.propagate(origin)
            for asn in micro_topology.ases:
                path = list(reversed(outcome.path_from(asn)))
                slopes = [
                    self._slope(micro_topology, a, b)
                    for a, b in zip(path, path[1:])
                ]
                # After the first non-uphill step, no more uphill steps.
                seen_top = False
                flats = 0
                for slope in slopes:
                    if slope == 0:
                        flats += 1
                    if slope != 1:
                        seen_top = True
                    elif seen_top:
                        pytest.fail(f"valley in {path}")
                assert flats <= 1


class TestSelectiveAnnouncement:
    def test_first_hop_restriction(self, propagator, micro_topology):
        # AS6 announces only to provider 4: AS3 must not route via 6's
        # link to it... i.e. path from 5 (under 3) goes up and across.
        outcome = propagator.propagate(6, first_hops={4})
        path_from_5 = outcome.path_from(5)
        assert path_from_5 is not None
        assert path_from_5[:2] != (5, 6)
        # The first hop from the origin side must be AS4.
        assert path_from_5[-2] == 4

    def test_restriction_to_nothing_isolates(self, propagator, micro_topology):
        outcome = propagator.propagate(6, first_hops=set())
        for asn in micro_topology.ases:
            if asn != 6:
                assert not outcome.has_route(asn)

    def test_restriction_still_reaches_all(self, propagator, micro_topology):
        outcome = propagator.propagate(6, first_hops={4})
        for asn in micro_topology.ases:
            assert outcome.has_route(asn)


class TestSiblings:
    def test_sibling_link_carries_routes(self, micro_topology):
        from repro.topology.model import Relationship

        micro_topology.add_link(6, 8, Relationship.SIBLING)
        propagator = RoutePropagator(micro_topology)
        outcome = propagator.propagate(6, first_hops={8})
        # Routes flow through the sibling and onwards.
        assert outcome.has_route(4)
        assert outcome.has_route(1)
