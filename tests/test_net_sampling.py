"""Tests for the interval address sampler."""

import numpy as np
import pytest

from repro.net.prefix import Prefix
from repro.net.prefixset import PrefixSet
from repro.net.sampling import IntervalSampler


class TestIntervalSampler:
    def test_samples_stay_inside_space(self, rng):
        space = PrefixSet([Prefix.parse("10.0.0.0/8"), Prefix.parse("192.0.2.0/24")])
        sampler = IntervalSampler(space)
        addrs = sampler.sample(rng, 5000)
        assert space.contains_many(addrs).all()

    def test_rejects_empty_space(self):
        with pytest.raises(ValueError):
            IntervalSampler(PrefixSet())

    def test_num_addresses(self):
        sampler = IntervalSampler(PrefixSet([Prefix.parse("10.0.0.0/24")]))
        assert sampler.num_addresses == 256

    def test_covers_both_intervals(self, rng):
        space = PrefixSet(
            [Prefix.parse("10.0.0.0/24"), Prefix.parse("192.0.2.0/24")]
        )
        sampler = IntervalSampler(space)
        addrs = sampler.sample(rng, 2000)
        in_first = (addrs >> np.uint64(24)) == 10
        # Both intervals should receive roughly half the draws.
        assert 0.3 < in_first.mean() < 0.7

    def test_spike_concentrates_draws(self, rng):
        space = PrefixSet([Prefix.parse("10.0.0.0/8")])
        spike = (10 << 24, (10 << 24) + 256)
        sampler = IntervalSampler(space, spike=spike, spike_share=0.5)
        addrs = sampler.sample(rng, 4000)
        spiked = (addrs >= spike[0]) & (addrs < spike[1])
        # Without the spike, P(addr in /24 of a /8) ~ 1/65536.
        assert spiked.mean() > 0.3

    def test_single_address_space(self, rng):
        sampler = IntervalSampler(PrefixSet([Prefix.parse("1.2.3.4/32")]))
        assert (sampler.sample(rng, 10) == np.uint64(0x01020304)).all()

    def test_roughly_uniform(self, rng):
        sampler = IntervalSampler(PrefixSet([Prefix.parse("8.0.0.0/7")]))
        addrs = sampler.sample(rng, 20000)
        in_low_half = (addrs >> np.uint64(24)) == 8
        assert 0.45 < in_low_half.mean() < 0.55
