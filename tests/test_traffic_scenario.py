"""Integration tests for the assembled traffic scenario."""

import numpy as np
import pytest

from repro.datasets.bogons import bogon_prefix_set
from repro.ixp.flows import PROTO_ICMP, TruthLabel
from repro.traffic.behaviors import VENN_DISTRIBUTION, assign_behaviors
from repro.util.timeconst import MEASUREMENT_SECONDS


class TestBehaviors:
    def test_venn_distribution_sums_to_one(self):
        assert sum(p for _c, p in VENN_DISTRIBUTION) == pytest.approx(1.0)

    def test_assignment_covers_all_members(self, tiny_world, rng):
        behaviors = assign_behaviors(rng, tiny_world.ixp)
        assert set(behaviors) == set(tiny_world.ixp.member_asns)

    def test_rates_only_for_emitters(self, tiny_world, rng):
        behaviors = assign_behaviors(rng, tiny_world.ixp)
        for behavior in behaviors.values():
            if not behavior.emits_bogon:
                assert behavior.bogon_rate == 0.0
            else:
                assert 0 < behavior.bogon_rate <= 0.10

    def test_fully_filtered_flag(self, tiny_world, rng):
        behaviors = assign_behaviors(rng, tiny_world.ixp)
        clean = [b for b in behaviors.values() if b.fully_filtered]
        assert clean  # some members are clean


class TestScenario:
    def test_flows_sorted_by_time(self, tiny_world):
        times = tiny_world.scenario.flows.time
        assert (np.diff(times) >= 0).all()

    def test_times_inside_window(self, tiny_world):
        times = tiny_world.scenario.flows.time
        assert times.min() >= 0
        assert times.max() < MEASUREMENT_SECONDS

    def test_members_are_ixp_members(self, tiny_world):
        flows = tiny_world.scenario.flows
        members = set(int(m) for m in np.unique(flows.member))
        assert members <= set(tiny_world.ixp.member_asns)

    def test_every_truth_label_present(self, tiny_world):
        truths = set(int(t) for t in np.unique(tiny_world.scenario.flows.truth))
        required = {
            int(TruthLabel.LEGIT),
            int(TruthLabel.LEGIT_HIDDEN_REL),
            int(TruthLabel.STRAY_NAT),
            int(TruthLabel.STRAY_ROUTER),
            int(TruthLabel.SPOOF_FLOOD),
            int(TruthLabel.SPOOF_TRIGGER),
        }
        assert required <= truths

    def test_legit_dominates(self, tiny_world):
        flows = tiny_world.scenario.flows
        legit = flows.packets[flows.truth == int(TruthLabel.LEGIT)].sum()
        assert legit / flows.packets.sum() > 0.9

    def test_nat_leaks_use_bogon_sources(self, tiny_world):
        flows = tiny_world.scenario.flows
        nat = flows.select(flows.truth == int(TruthLabel.STRAY_NAT))
        assert len(nat) > 0
        assert bogon_prefix_set().contains_many(nat.src).all()

    def test_legit_sources_never_bogon(self, tiny_world):
        flows = tiny_world.scenario.flows
        legit = flows.select(flows.truth == int(TruthLabel.LEGIT))
        assert not bogon_prefix_set().contains_many(legit.src).any()

    def test_router_strays_mostly_icmp(self, tiny_world):
        flows = tiny_world.scenario.flows
        strays = flows.select(flows.truth == int(TruthLabel.STRAY_ROUTER))
        assert len(strays) > 0
        icmp_share = (strays.proto == PROTO_ICMP).mean()
        assert icmp_share > 0.6

    def test_triggers_spoof_victims(self, tiny_world):
        flows = tiny_world.scenario.flows
        triggers = flows.select(flows.truth == int(TruthLabel.SPOOF_TRIGGER))
        victims = {e.victim_addr for e in tiny_world.scenario.plan.amplifications}
        assert set(int(s) for s in np.unique(triggers.src)) <= victims

    def test_attack_plan_consistency(self, tiny_world):
        plan = tiny_world.scenario.plan
        members = set(tiny_world.ixp.member_asns)
        for event in plan.floods:
            assert event.member in members
            assert event.sampled_packets >= 0
        for event in plan.amplifications:
            assert event.member in members
            assert event.amplifiers.size > 0

    def test_positive_sizes(self, tiny_world):
        flows = tiny_world.scenario.flows
        assert (flows.packets > 0).all()
        assert (flows.bytes >= 40 * flows.packets).all()

    def test_deterministic_given_config(self, tiny_world):
        from repro.experiments import WorldConfig, build_world

        rebuilt = build_world(WorldConfig.tiny())
        assert len(rebuilt.scenario.flows) == len(tiny_world.scenario.flows)
        assert (
            rebuilt.scenario.flows.src == tiny_world.scenario.flows.src
        ).all()
