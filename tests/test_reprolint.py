"""reprolint rule fixtures: every rule fires on the bad shape, stays
quiet on the repaired shape, and respects both suppression layers.

Each test builds a miniature repo under ``tmp_path`` (the rules are
path-sensitive: ``src/`` scoping, the classifier allowlist, hot-path
directories) and runs the real driver with ``--select`` narrowed to
the rule under test so fixtures never trip neighbouring rules.
"""

from __future__ import annotations

import ast
import json
import pathlib
import textwrap

import pytest

from tools import check_doc_links, docstring_gate, type_coverage
from tools.reprolint.baseline import Baseline, write_baseline
from tools.reprolint.checks._astutil import import_map, resolve_call_name
from tools.reprolint.context import LintConfig
from tools.reprolint.findings import Finding, apply_inline, inline_disables
from tools.reprolint.registry import all_rules
from tools.reprolint.runner import main as reprolint_main
from tools.reprolint.runner import run


def lint(
    root,
    files,
    inputs=("src",),
    *,
    select=None,
    config=None,
    use_baseline=False,
    baseline_path=None,
):
    """Write the fixture tree and run the real driver over it."""
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    findings, meta = run(
        root,
        list(inputs),
        config=config,
        select=frozenset(select) if select else None,
        use_baseline=use_baseline,
        baseline_path=baseline_path,
        jobs=1,
    )
    return findings, meta


def active(findings):
    return [f for f in findings if f.active]


# ---------------------------------------------------------------- RL001


POOL_FIXTURE = """\
    import multiprocessing

    def build():
        return multiprocessing.Pool(4)
    """


def test_rl001_fires_on_raw_pool_in_src(tmp_path):
    findings, _ = lint(
        tmp_path,
        {"src/repro/util/pools.py": POOL_FIXTURE},
        select={"RL001"},
    )
    (finding,) = active(findings)
    assert finding.rule == "RL001"
    assert finding.path == "src/repro/util/pools.py"
    assert finding.line == 4
    assert "multiprocessing.Pool" in finding.message


def test_rl001_fires_on_executor_and_context_pool(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/util/exec.py": """\
            import multiprocessing as mp
            from concurrent.futures import ProcessPoolExecutor

            def build():
                ctx = mp.get_context("spawn")
                return ProcessPoolExecutor(2), ctx.Pool(2)
            """,
        },
        select={"RL001"},
    )
    assert len(active(findings)) == 2


def test_rl001_quiet_in_allowlisted_file_and_outside_src(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/core/classifier.py": POOL_FIXTURE,
            "tools/helper.py": POOL_FIXTURE,
        },
        inputs=("src", "tools"),
        select={"RL001"},
    )
    assert active(findings) == []


def test_rl001_inline_disable_records_suppression(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/util/pools.py": """\
            import multiprocessing

            def build():
                return multiprocessing.Pool(4)  # reprolint: disable=RL001
            """,
        },
        select={"RL001"},
    )
    (finding,) = findings
    assert finding.suppressed == "inline"
    assert not finding.active


# ---------------------------------------------------------------- RL002


RL002_BAD = """\
    _CACHE = None

    def _worker(item):
        return (_CACHE, item)

    def fan_out(pool, items):
        global _CACHE
        _CACHE = {}
        return pool.imap(_worker, items)
    """


def test_rl002_fires_without_registry(tmp_path):
    findings, _ = lint(
        tmp_path,
        {"src/repro/util/stream.py": RL002_BAD},
        select={"RL002"},
    )
    (finding,) = active(findings)
    assert finding.rule == "RL002"
    assert "_CACHE" in finding.message
    assert "defines no _STREAM_GLOBALS" in finding.message


def test_rl002_quiet_when_global_registered(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/util/stream.py": '_STREAM_GLOBALS = ("_CACHE",)\n'
            + textwrap.dedent(RL002_BAD),
        },
        select={"RL002"},
    )
    assert active(findings) == []


def test_rl002_fires_when_registry_incomplete(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/util/stream.py": '_STREAM_GLOBALS = ("_OTHER",)\n'
            + textwrap.dedent(RL002_BAD),
        },
        select={"RL002"},
    )
    (finding,) = active(findings)
    assert "not listed in _STREAM_GLOBALS" in finding.message


# ---------------------------------------------------------------- RL003


RL003_BAD = """\
    from repro.obs.trace import current_tracer

    def _worker(item):
        tracer = current_tracer()
        return item

    def fan_out(ctx, items):
        with ctx.Pool(2) as pool:
            return pool.map(_worker, items)
    """


def test_rl003_fires_when_tracing_worker_has_no_initializer(tmp_path):
    findings, _ = lint(
        tmp_path,
        {"src/repro/util/traced.py": RL003_BAD},
        select={"RL003"},
    )
    (finding,) = active(findings)
    assert finding.rule == "RL003"
    assert "_worker" in finding.message
    assert "enable_tracing" in finding.message


def test_rl003_quiet_when_initializer_rearms(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/util/traced.py": """\
            from repro.obs.trace import current_tracer, enable_tracing

            def _init(enabled):
                enable_tracing(enabled)

            def _worker(item):
                tracer = current_tracer()
                return item

            def fan_out(ctx, items):
                with ctx.Pool(2, initializer=_init, initargs=(True,)) as pool:
                    return pool.map(_worker, items)
            """,
        },
        select={"RL003"},
    )
    assert active(findings) == []


# ---------------------------------------------------------------- RL004


RL004_BAD = """\
    import numpy as np

    def build(values):
        widened = np.zeros(4)
        copied = values.astype(copy=False)
        boxed = np.asarray(values, dtype=object)
        out = []
        for item in widened:
            out.append(item)
        return widened, copied, boxed, out
    """


def test_rl004_fires_on_hot_path_dtype_indiscipline(tmp_path):
    findings, _ = lint(
        tmp_path,
        {"src/repro/core/hot.py": RL004_BAD},
        select={"RL004"},
    )
    messages = [f.message for f in active(findings)]
    assert len(messages) == 4
    assert any("np.zeros()" in m for m in messages)
    assert any(".astype()" in m for m in messages)
    assert any("dtype=object" in m for m in messages)
    assert any("list-append loop" in m for m in messages)


def test_rl004_quiet_outside_hot_path_and_when_repaired(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/io/cold.py": RL004_BAD,
            "src/repro/core/hot.py": """\
            import numpy as np

            def build(values):
                widened = np.zeros(4, dtype=np.float64)
                copied = values.astype(np.int64, copy=False)
                packed = np.asarray(values, dtype=np.uint32)
                return widened, copied, packed, widened.tolist()
            """,
        },
        select={"RL004"},
    )
    assert active(findings) == []


# ---------------------------------------------------------------- RL005


def test_rl005_fires_on_bare_except_raise_exception_and_rogue_class(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/util/errors.py": """\
            class CustomError(Exception):
                pass

            def f():
                try:
                    return 1
                except:
                    raise Exception("boom")
            """,
        },
        select={"RL005"},
    )
    messages = sorted(f.message for f in active(findings))
    assert len(messages) == 3
    assert any("bare except" in m for m in messages)
    assert any("raise Exception" in m for m in messages)
    assert any("CustomError" in m for m in messages)


def test_rl005_quiet_when_taxonomy_is_used(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/util/errors.py": """\
            from repro.errors import ReproError

            class CustomError(ReproError):
                pass

            class DerivedError(CustomError):
                pass

            def f():
                try:
                    return 1
                except ValueError:
                    raise DerivedError("boom")
            """,
        },
        select={"RL005"},
    )
    assert active(findings) == []


# ---------------------------------------------------------------- RL006


def test_rl006_fires_on_wallclock_in_core(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/core/timing.py": """\
            import time

            def stamp():
                return time.time()
            """,
        },
        select={"RL006"},
    )
    (finding,) = active(findings)
    assert finding.rule == "RL006"
    assert "time.time() in core/" in finding.message


def test_rl006_fires_only_in_worker_closure_outside_core(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/traffic/gen.py": """\
            import time

            def _worker(item):
                return time.time()

            def supervisor():
                return time.time()

            def fan_out(pool, items):
                return pool.map(_worker, items)
            """,
        },
        select={"RL006"},
    )
    (finding,) = active(findings)
    assert "in a pool worker" in finding.message


def test_rl006_quiet_for_monotonic_timers(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/core/timing.py": """\
            import time

            def stamp():
                return time.perf_counter()
            """,
        },
        select={"RL006"},
    )
    assert active(findings) == []


# ---------------------------------------------------------------- RL007


def test_rl007_fires_on_mutable_defaults(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/util/defaults.py": """\
            def f(items=[], *, lookup=dict()):
                return items, lookup
            """,
        },
        select={"RL007"},
    )
    assert len(active(findings)) == 2


def test_rl007_quiet_with_none_sentinel(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/util/defaults.py": """\
            def f(items=None, *, lookup=None):
                return items or [], lookup or {}
            """,
        },
        select={"RL007"},
    )
    assert active(findings) == []


# ---------------------------------------------------------------- RL008


def test_rl008_fires_on_unreferenced_public_symbol(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/analysis/extra.py": """\
            def orphan_helper():
                return 1
            """,
        },
        select={"RL008"},
    )
    (finding,) = active(findings)
    assert finding.rule == "RL008"
    assert "orphan_helper" in finding.message


def test_rl008_quiet_when_imported_elsewhere(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/analysis/extra.py": """\
            def orphan_helper():
                return 1
            """,
            "src/repro/analysis/user.py": """\
            from repro.analysis.extra import orphan_helper

            def _use():
                return orphan_helper()
            """,
        },
        select={"RL008"},
    )
    assert active(findings) == []


def test_rl008_quiet_when_markdown_corpus_mentions_symbol(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/analysis/extra.py": """\
            def orphan_helper():
                return 1
            """,
            "docs/API.md": "Call `orphan_helper` to do the thing.\n",
        },
        select={"RL008"},
    )
    assert active(findings) == []


# ---------------------------------------------------------------- RL009


def test_rl009_fires_on_truncating_writes_in_durable_dir(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/stream/durable/bad.py": """\
            import json
            import pathlib

            def save_cursor(path, cursor):
                with open(path, "w") as handle:
                    json.dump(cursor, handle)

            def save_blob(path, blob):
                pathlib.Path(path).write_bytes(blob)
            """,
        },
        select={"RL009"},
    )
    fired = active(findings)
    assert [f.rule for f in fired] == ["RL009", "RL009"]
    assert "open(..., 'w')" in fired[0].message
    assert "atomic_write_bytes" in fired[0].message
    assert ".write_bytes()" in fired[1].message


def test_rl009_quiet_for_appends_and_inline_dance(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/stream/durable/good.py": """\
            import os

            from repro.util.atomicio import atomic_write_bytes

            def append_record(path, record):
                with open(path, "ab") as handle:
                    handle.write(record)
                    os.fsync(handle.fileno())

            def save_checkpoint(path, blob):
                atomic_write_bytes(path, blob)

            def low_level_dance(path, blob):
                tmp = str(path) + ".tmp"
                with open(tmp, "wb") as handle:
                    handle.write(blob)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
            """,
        },
        select={"RL009"},
    )
    assert active(findings) == []


def test_rl009_quiet_outside_durable_dirs(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/io/export.py": """\
            def export(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """,
        },
        select={"RL009"},
    )
    assert active(findings) == []


# ---------------------------------------------------------------- RL010


SHM_FIXTURE = """\
    from multiprocessing import shared_memory

    def grab():
        return shared_memory.SharedMemory(create=True, size=64)
    """


def test_rl010_fires_on_raw_shared_memory_in_src(tmp_path):
    findings, _ = lint(
        tmp_path,
        {"src/repro/util/fast.py": SHM_FIXTURE},
        select={"RL010"},
    )
    (finding,) = active(findings)
    assert finding.rule == "RL010"
    assert finding.path == "src/repro/util/fast.py"
    assert finding.line == 4
    assert "shmseg" in finding.message


def test_rl010_fires_on_direct_name_import(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/core/ring.py": """\
            from multiprocessing.shared_memory import SharedMemory

            def attach(name):
                return SharedMemory(name=name, create=False)
            """,
        },
        select={"RL010"},
    )
    (finding,) = active(findings)
    assert finding.rule == "RL010"


def test_rl010_quiet_in_audited_helper_and_outside_src(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/util/shmseg.py": SHM_FIXTURE,
            "tools/probe.py": SHM_FIXTURE,
        },
        inputs=("src", "tools"),
        select={"RL010"},
    )
    assert active(findings) == []


def test_rl010_inline_disable_records_suppression(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/util/fast.py": """\
            from multiprocessing import shared_memory

            def grab():
                return shared_memory.SharedMemory(create=True, size=64)  # reprolint: disable=RL010
            """,
        },
        select={"RL010"},
    )
    (finding,) = findings
    assert finding.suppressed == "inline"
    assert not finding.active


# ---------------------------------------------------------------- RL101


def test_rl101_fires_below_docstring_threshold(tmp_path):
    config = LintConfig(docstring_packages=("src/repro/bare",))
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/bare/__init__.py": """\
            def alpha():
                return 1

            def beta():
                return 2
            """,
        },
        select={"RL101"},
        config=config,
    )
    (finding,) = active(findings)
    assert finding.rule == "RL101"
    assert finding.path == "src/repro/bare/__init__.py"
    assert "docstring coverage" in finding.message


def test_rl101_quiet_when_documented(tmp_path):
    config = LintConfig(docstring_packages=("src/repro/bare",))
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/bare/__init__.py": '''\
            """Package docstring."""

            def alpha():
                """Documented."""
                return 1
            ''',
        },
        select={"RL101"},
        config=config,
    )
    assert active(findings) == []


# ---------------------------------------------------------------- RL102


def test_rl102_fires_on_broken_markdown_reference(tmp_path):
    (tmp_path / "README.md").write_text("# Title\n")
    findings, _ = lint(
        tmp_path,
        {
            "docs/GUIDE.md": textwrap.dedent(
                """\
                # Guide

                See [the readme](../README.md) and [nothing](missing.md).
                """
            ),
        },
        inputs=("docs",),
        select={"RL102"},
    )
    (finding,) = active(findings)
    assert finding.rule == "RL102"
    assert finding.path == "docs/GUIDE.md"
    assert finding.line == 3
    assert "missing.md" in finding.message
    assert "[link]" in finding.message


def test_rl102_quiet_when_references_resolve(tmp_path):
    (tmp_path / "README.md").write_text("# Title\n")
    findings, _ = lint(
        tmp_path,
        {
            "docs/GUIDE.md": "# Guide\n\nSee [the readme](../README.md).\n",
        },
        inputs=("docs",),
        select={"RL102"},
    )
    assert active(findings) == []


# ------------------------------------------------------- parse failures


def test_rl000_reports_syntax_errors(tmp_path):
    findings, _ = lint(
        tmp_path,
        {"src/repro/util/broken.py": "def f(:\n    pass\n"},
    )
    assert [f.rule for f in active(findings)] == ["RL000"]


# ------------------------------------------------------------- baseline


def test_baseline_suppresses_by_code_even_after_line_drift(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {
                        "rule": "RL007",
                        "path": "src/repro/util/defaults.py",
                        "line": 999,
                        "code": "def f(items=[]):",
                        "justification": "fixture keeps the defect",
                    }
                ],
            }
        )
    )
    findings, meta = lint(
        tmp_path,
        {
            "src/repro/util/defaults.py": """\
            # a comment that shifts every line number


            def f(items=[]):
                return items
            """,
        },
        select={"RL007"},
        use_baseline=True,
        baseline_path=baseline_path,
    )
    (finding,) = findings
    assert finding.suppressed == "baseline"
    assert finding.justification == "fixture keeps the defect"
    assert meta["stale_baseline"] == []


def test_stale_baseline_entries_are_reported(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {
                        "rule": "RL007",
                        "path": "src/repro/util/gone.py",
                        "code": "def f(items=[]):",
                        "justification": "file was deleted",
                    }
                ],
            }
        )
    )
    findings, meta = lint(
        tmp_path,
        {"src/repro/util/clean.py": "def f(items=None):\n    return items\n"},
        select={"RL007"},
        use_baseline=True,
        baseline_path=baseline_path,
    )
    assert active(findings) == []
    assert len(meta["stale_baseline"]) == 1
    assert meta["stale_baseline"][0]["path"] == "src/repro/util/gone.py"


def test_write_baseline_round_trip_silences_the_run(tmp_path):
    files = {
        "src/repro/util/defaults.py": "def f(items=[]):\n    return items\n"
    }
    findings, meta = lint(tmp_path, files, select={"RL007"})
    assert len(active(findings)) == 1

    baseline_path = tmp_path / "baseline.json"
    count = write_baseline(baseline_path, findings, meta["lines_of"])
    assert count == 1
    entry = json.loads(baseline_path.read_text())["entries"][0]
    assert entry["code"] == "def f(items=[]):"
    assert entry["justification"] == "TODO: justify or fix"

    findings, _ = lint(
        tmp_path,
        files,
        select={"RL007"},
        use_baseline=True,
        baseline_path=baseline_path,
    )
    assert active(findings) == []


def test_baseline_rejects_unknown_version(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(ValueError, match="unsupported baseline version"):
        Baseline.load(bad)


# ------------------------------------------------- inline-disable parsing


def test_inline_disable_parses_lists_and_all():
    lines = [
        "x = 1  # reprolint: disable=RL001,RL004",
        "y = 2",
        "z = 3  # reprolint: disable=all",
    ]
    disabled = inline_disables(lines)
    assert disabled == {1: {"RL001", "RL004"}, 3: {"all"}}

    findings = [
        Finding("m.py", 1, 1, "RL004", "a"),
        Finding("m.py", 2, 1, "RL004", "b"),
        Finding("m.py", 3, 1, "RL008", "c"),
    ]
    marked = apply_inline(findings, disabled)
    assert [f.suppressed for f in marked] == ["inline", None, "inline"]


# --------------------------------------------------------------- driver


def test_main_exit_codes_and_json_artifact(tmp_path, capsys):
    src = tmp_path / "src" / "repro" / "util"
    src.mkdir(parents=True)
    (src / "defaults.py").write_text("def f(items=[]):\n    return items\n")
    report_path = tmp_path / "report.json"

    rc = reprolint_main(
        [
            "src",
            "--root",
            str(tmp_path),
            "--select",
            "RL007",
            "--jobs",
            "1",
            "--json-out",
            str(report_path),
        ]
    )
    assert rc == 1
    out = capsys.readouterr().out
    assert "src/repro/util/defaults.py:1:" in out
    report = json.loads(report_path.read_text())
    assert report["active"] == 1
    assert report["findings"][0]["rule"] == "RL007"

    (src / "defaults.py").write_text("def f(items=None):\n    return items\n")
    rc = reprolint_main(
        ["src", "--root", str(tmp_path), "--select", "RL007", "--jobs", "1"]
    )
    assert rc == 0

    rc = reprolint_main(["no/such/dir", "--root", str(tmp_path)])
    assert rc == 2


def test_rule_inventory_is_complete():
    rules = {rule for rule, _ in all_rules()}
    assert rules == {
        "RL001",
        "RL002",
        "RL003",
        "RL004",
        "RL005",
        "RL006",
        "RL007",
        "RL008",
        "RL009",
        "RL010",
        "RL101",
        "RL102",
        "RL201",
        "RL202",
        "RL203",
        "RL204",
        "RL301",
        "RL302",
        "RL303",
        "RL304",
        "RL305",
    }


def test_resolve_call_name_traces_context_pools():
    tree = ast.parse(
        "import multiprocessing as mp\n"
        'pool = mp.get_context("fork").Pool(2)\n'
    )
    imports = import_map(tree)
    call = tree.body[1].value
    assert (
        resolve_call_name(call.func, imports)
        == "multiprocessing.get_context().Pool"
    )


# ------------------------------------------- companion tools' exit codes


def test_doc_link_exit_codes_are_distinct_per_category(tmp_path):
    def issue(category):
        return check_doc_links.LinkIssue(category, tmp_path, 1, "x")

    assert check_doc_links.exit_code_for([]) == 0
    assert check_doc_links.exit_code_for(
        [issue(check_doc_links.CATEGORY_LINK)]
    ) == check_doc_links.EXIT_BROKEN_LINKS
    assert check_doc_links.exit_code_for(
        [issue(check_doc_links.CATEGORY_ANCHOR)]
    ) == check_doc_links.EXIT_BROKEN_ANCHORS
    assert check_doc_links.exit_code_for(
        [issue(check_doc_links.CATEGORY_CODE_REF)]
    ) == check_doc_links.EXIT_DANGLING_CODE_REFS
    assert check_doc_links.exit_code_for(
        [
            issue(check_doc_links.CATEGORY_LINK),
            issue(check_doc_links.CATEGORY_ANCHOR),
        ]
    ) == check_doc_links.EXIT_MULTIPLE


def test_docstring_gate_exit_codes_are_distinct():
    codes = {
        docstring_gate.EXIT_OK,
        docstring_gate.EXIT_NO_FILES,
        docstring_gate.EXIT_BELOW_THRESHOLD,
        docstring_gate.EXIT_MISSING_REQUIRED,
    }
    assert codes == {0, 2, 3, 4}


def test_type_coverage_counts_and_gates(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text(
        textwrap.dedent(
            """\
            def typed(x: int) -> int:
                return x

            def untyped(x):
                return x
            """
        )
    )
    tally = type_coverage.audit_module(module)
    assert (tally.annotated, tally.total) == (2, 4)
    assert any("untyped(x)" in slot for slot in tally.missing)

    assert type_coverage.main([str(module), "--require", "100"]) == 3
    assert type_coverage.main([str(module), "--require", "50"]) == 0
    empty = tmp_path / "empty"
    empty.mkdir()
    assert type_coverage.main([str(empty)]) == 2


# --------------------------------------------- RL2xx: program rules


RACY_DAEMON = """\
    import threading

    class Daemon:
        def __init__(self):
            self.count = 0
            self._thread = None

        def start(self):
            self._thread = threading.Thread(target=self._worker)
            self._thread.start()

        def _worker(self):
            self.count += 1

        def status(self):
            return self.count
    """


def test_rl201_fires_on_thread_shared_attribute(tmp_path):
    findings, _ = lint(
        tmp_path, {"src/app.py": RACY_DAEMON}, select=["RL201"]
    )
    assert [f.rule for f in active(findings)] == ["RL201"]
    finding = active(findings)[0]
    assert "Daemon.count" in finding.message
    assert finding.path == "src/app.py"


def test_rl201_quiet_with_contract_declaration(tmp_path):
    code = RACY_DAEMON.replace(
        "class Daemon:",
        "class Daemon:\n"
        '        _CONCURRENCY_CONTRACT = {"count": "single-writer:_worker"}\n',
    )
    findings, _ = lint(tmp_path, {"src/app.py": code}, select=["RL201"])
    assert active(findings) == []


def test_rl201_quiet_when_lock_mediated(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/app.py": """\
            import threading

            class Daemon:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def start(self):
                    threading.Thread(target=self._worker).start()

                def _worker(self):
                    with self._lock:
                        self.count += 1

                def status(self):
                    with self._lock:
                        return self.count
            """
        },
        select=["RL201"],
    )
    assert active(findings) == []


def test_rl201_inline_disable_records_suppression(tmp_path):
    code = RACY_DAEMON.replace(
        "self.count += 1",
        "self.count += 1  # reprolint: disable=RL201",
    )
    findings, _ = lint(tmp_path, {"src/app.py": code}, select=["RL201"])
    assert active(findings) == []
    assert [f.rule for f in findings if f.suppressed] == ["RL201"]


def test_rl201_baseline_round_trip(tmp_path):
    findings, _ = lint(
        tmp_path, {"src/app.py": RACY_DAEMON}, select=["RL201"]
    )
    assert len(active(findings)) == 1
    baseline_path = tmp_path / "baseline.json"
    write_baseline(
        baseline_path, active(findings), {"src/app.py": tmp_path.joinpath(
            "src/app.py").read_text().splitlines()}
    )
    findings, _ = lint(
        tmp_path,
        {"src/app.py": RACY_DAEMON},
        select=["RL201"],
        use_baseline=True,
        baseline_path=baseline_path,
    )
    assert active(findings) == []
    assert [f.rule for f in findings if f.suppressed] == ["RL201"]


def test_rl202_fires_on_cross_module_fork_pool_reach(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/app.py": """\
            import threading

            from work import launch

            class Daemon:
                def start(self):
                    threading.Thread(target=self._worker).start()

                def _worker(self):
                    return None

                def run(self):
                    return launch()
            """,
            "src/work.py": """\
            import multiprocessing

            def launch():
                with multiprocessing.Pool(2) as pool:
                    return pool.map(sorted, [])
            """,
        },
        select=["RL202"],
    )
    assert [f.rule for f in active(findings)] == ["RL202"]
    finding = active(findings)[0]
    assert finding.path == "src/app.py"
    assert "Daemon.run()" in finding.message


def test_rl202_quiet_with_spawn_context(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/app.py": """\
            import multiprocessing
            import threading

            class Daemon:
                def start(self):
                    threading.Thread(target=self._worker).start()

                def _worker(self):
                    return None

                def run(self):
                    with multiprocessing.get_context("spawn").Pool(2) as pool:
                        return pool.map(sorted, [])
            """
        },
        select=["RL202"],
    )
    assert active(findings) == []


def test_rl202_fires_on_pool_under_held_lock(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/app.py": """\
            import multiprocessing
            import threading

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()

                def go(self):
                    with self._lock:
                        pool = multiprocessing.Pool(2)
                    return pool
            """
        },
        select=["RL202"],
    )
    assert [f.rule for f in active(findings)] == ["RL202"]
    assert "self._lock" in active(findings)[0].message


def test_rl203_fires_on_lambda_and_local_def_submits(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/app.py": """\
            import multiprocessing

            def run():
                def helper(row):
                    return row

                with multiprocessing.get_context("spawn").Pool(2) as pool:
                    pool.apply_async(lambda row: row, args=(1,))
                    pool.apply_async(helper, args=(2,))
            """
        },
        select=["RL203"],
    )
    messages = sorted(f.message for f in active(findings))
    assert len(messages) == 2
    assert "helper is defined inside run()" in messages[0]
    assert "lambda" in messages[1]


def test_rl203_fires_on_unregistered_cross_module_global(tmp_path):
    files = {
        "src/app.py": """\
        import multiprocessing

        from work import worker

        def run():
            with multiprocessing.get_context("spawn").Pool(2) as pool:
                pool.apply_async(worker, args=(1,))
        """,
        "src/work.py": """\
        CACHE = {}

        def _rearm(snapshot):
            global CACHE
            CACHE = snapshot

        def worker(row):
            return CACHE.get(row)
        """,
    }
    findings, _ = lint(tmp_path, files, select=["RL203"])
    assert [f.rule for f in active(findings)] == ["RL203"]
    finding = active(findings)[0]
    assert finding.path == "src/app.py"
    assert "CACHE" in finding.message

    files["src/work.py"] = textwrap.dedent(files["src/work.py"]).replace(
        "CACHE = {}", 'CACHE = {}\n\n_STREAM_GLOBALS = ("CACHE",)'
    )
    findings, _ = lint(tmp_path, files, select=["RL203"])
    assert active(findings) == []


def test_rl204_fires_on_rename_without_fsync_in_durable_scope(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/stream/durable/writer.py": """\
            import os

            def commit(tmp, path):
                os.replace(tmp, path)
            """
        },
        select=["RL204"],
    )
    assert [f.rule for f in active(findings)] == ["RL204"]
    assert "os.replace" in active(findings)[0].message


def test_rl204_quiet_with_fsync_direct_or_via_callee(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/stream/durable/writer.py": """\
            import os

            def _sync(fd):
                os.fsync(fd)

            def commit_direct(tmp, path, fd):
                os.fsync(fd)
                os.replace(tmp, path)

            def commit_via_helper(tmp, path, fd):
                _sync(fd)
                os.replace(tmp, path)
            """
        },
        select=["RL204"],
    )
    assert active(findings) == []


def test_rl204_quiet_outside_durable_scope(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/app.py": """\
            import os

            def shuffle(tmp, path):
                os.replace(tmp, path)
            """
        },
        select=["RL204"],
    )
    assert active(findings) == []


# --------------------------------------------- RL3xx: dataflow rules


SHM_LEAK = """\
    from repro.util.shmseg import create_segment, release_segment

    def build(spec, views):
        segment = create_segment(spec)
        payload = views(spec)
        release_segment(segment)
        return payload
    """

SHM_DOUBLE_RELEASE = """\
    from repro.util.shmseg import create_segment, release_segment

    def build(spec):
        segment = create_segment(spec)
        release_segment(segment)
        release_segment(segment)
    """

COMMIT_NO_FSYNC = """\
    import os

    def commit(tmp, path):
        os.replace(tmp, path)
    """

POOL_STALE = """\
    from pools import make_pool

    def drive(worker, chunks):
        pool = make_pool(4)
        pool.imap(worker, chunks)
    """

DTYPE_ROUNDTRIP = """\
    import numpy as np

    def totals(labels, counts):
        acc = np.bincount(labels, weights=counts)
        return acc.astype(np.int64)
    """

SHAPE_MISMATCH = """\
    import numpy as np

    def stitch():
        a = np.zeros((4, 3))
        b = np.zeros((5, 2))
        return np.concatenate([a, b], axis=0)
    """

#: rule → (fixture files, the line that hosts the finding) — shared by
#: the fires, pragma and baseline round-trip tests below.
RL3XX_FIRES = {
    "RL301": ({"src/app.py": SHM_LEAK}, "segment = create_segment(spec)"),
    "RL302": (
        {"src/repro/stream/durable/writer.py": COMMIT_NO_FSYNC},
        "os.replace(tmp, path)",
    ),
    "RL303": ({"src/app.py": POOL_STALE}, "pool.imap(worker, chunks)"),
    "RL304": (
        {"src/repro/core/kernel.py": DTYPE_ROUNDTRIP},
        "return acc.astype(np.int64)",
    ),
    "RL305": (
        {"src/repro/core/kernel.py": SHAPE_MISMATCH},
        "return np.concatenate([a, b], axis=0)",
    ),
}


def test_rl301_fires_on_leak_along_exception_path(tmp_path):
    findings, _ = lint(tmp_path, {"src/app.py": SHM_LEAK}, select=["RL301"])
    assert [f.rule for f in active(findings)] == ["RL301"]
    assert "leak on an exception path" in active(findings)[0].message


def test_rl301_fires_on_double_release(tmp_path):
    findings, _ = lint(
        tmp_path, {"src/app.py": SHM_DOUBLE_RELEASE}, select=["RL301"]
    )
    assert [f.rule for f in active(findings)] == ["RL301"]
    assert "released twice" in active(findings)[0].message


def test_rl301_fires_on_use_after_release(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/app.py": """\
            from repro.util.shmseg import create_segment, release_segment

            def build(spec):
                segment = create_segment(spec)
                release_segment(segment)
                return segment.name
            """
        },
        select=["RL301"],
    )
    assert [f.rule for f in active(findings)] == ["RL301"]
    assert "used after release" in active(findings)[0].message


def test_rl301_quiet_with_exception_path_release(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/app.py": """\
            from repro.util.shmseg import create_segment, release_segment

            def build(spec, views):
                segment = create_segment(spec)
                try:
                    payload = views(spec)
                except BaseException:
                    release_segment(segment)
                    raise
                release_segment(segment)
                return payload
            """
        },
        select=["RL301"],
    )
    assert active(findings) == []


def test_rl301_quiet_when_helper_releases_interprocedurally(tmp_path):
    """``cleanup(segment)`` counts as a release because the program
    index proves cleanup() releases its first parameter."""
    findings, _ = lint(
        tmp_path,
        {
            "src/helpers.py": """\
            from repro.util.shmseg import release_segment

            def cleanup(segment, unlink=True):
                release_segment(segment, unlink=unlink)
            """,
            "src/app.py": """\
            from helpers import cleanup
            from repro.util.shmseg import create_segment

            def build(spec, views):
                segment = create_segment(spec)
                try:
                    payload = views(spec)
                except BaseException:
                    cleanup(segment)
                    raise
                cleanup(segment)
                return payload
            """,
        },
        select=["RL301"],
    )
    assert active(findings) == []


def test_rl302_fires_on_partially_synced_branch(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/stream/durable/writer.py": """\
            import os

            def commit(tmp, path, fd, fast):
                if fast:
                    pass
                else:
                    os.fsync(fd)
                os.replace(tmp, path)
            """
        },
        select=["RL302"],
    )
    assert [f.rule for f in active(findings)] == ["RL302"]
    assert "rename reachable without" in active(findings)[0].message


def test_rl302_fires_on_checkpoint_outrunning_log(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/stream/durable/writer.py": """\
            def persist(wal, store, event):
                wal.append(event)
                store.save(event)
            """
        },
        select=["RL302"],
    )
    assert [f.rule for f in active(findings)] == ["RL302"]
    assert "checkpoint" in active(findings)[0].message


def test_rl302_quiet_when_all_paths_sync_or_are_exempt(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/stream/durable/writer.py": """\
            import os

            def commit(tmp, path, fd, durable):
                if durable:
                    os.fsync(fd)
                    os.replace(tmp, path)
                    return
                os.replace(tmp, path)

            def persist(wal, store, event):
                wal.append(event)
                wal.sync()
                store.save(event)
            """
        },
        select=["RL302"],
    )
    assert active(findings) == []


def test_rl303_fires_on_submit_to_drained_pool(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/app.py": """\
            from pools import make_pool

            def drive(worker, chunks):
                pool = make_pool(4)
                armed_version = 1
                pool.imap(worker, chunks)
                pool.terminate()
                pool.join()
                pool.imap(worker, chunks)
            """
        },
        select=["RL303"],
    )
    assert [f.rule for f in active(findings)] == ["RL303"]
    assert "drained pool" in active(findings)[0].message


def test_rl303_fires_on_submit_before_version_rearm(tmp_path):
    findings, _ = lint(tmp_path, {"src/app.py": POOL_STALE}, select=["RL303"])
    assert [f.rule for f in active(findings)] == ["RL303"]
    assert "version" in active(findings)[0].message


def test_rl303_quiet_with_version_rearm(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/app.py": """\
            from pools import make_pool

            def drive(worker, chunks):
                pool = make_pool(4)
                armed_version = 1
                pool.imap(worker, chunks)
                pool.terminate()
                pool.join()

            def staged(worker, chunks, version):
                armed_version = version
                pool = make_pool(4)
                pool.imap(worker, chunks)
                pool.terminate()
                pool.join()
            """
        },
        select=["RL303"],
    )
    assert active(findings) == []


def test_rl304_fires_on_float64_roundtrip_of_integer_data(tmp_path):
    findings, _ = lint(
        tmp_path,
        {"src/repro/core/kernel.py": DTYPE_ROUNDTRIP},
        select=["RL304"],
    )
    assert [f.rule for f in active(findings)] == ["RL304"]
    assert "float64 temporary" in active(findings)[0].message


def test_rl304_fires_on_float32_mix_and_chained_mask_gather(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/core/kernel.py": """\
            import numpy as np

            def mix(n):
                small = np.zeros(4, dtype=np.float32)
                big = np.zeros(4)
                return small * big

            def gather(ends, idx):
                valid = idx >= 0
                return ends[idx][valid]
            """
        },
        select=["RL304"],
    )
    messages = sorted(f.message for f in active(findings))
    assert len(messages) == 2
    assert "chained fancy indexing" in messages[0]
    assert "float32 operand silently upcast" in messages[1]


def test_rl304_quiet_when_repaired_and_outside_scope(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/core/kernel.py": """\
            import numpy as np

            def totals(labels, counts):
                acc = np.zeros(8, dtype=np.int64)
                np.add.at(acc, labels, counts)
                return acc

            def gather(ends, idx):
                valid = idx >= 0
                return ends[idx[valid]]
            """,
            # Same defect outside the dtype scope: not policed.
            "src/app.py": DTYPE_ROUNDTRIP,
        },
        select=["RL304"],
    )
    assert active(findings) == []


def test_rl305_fires_on_concat_and_matmul_mismatch(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/core/kernel.py": """\
            import numpy as np

            def stitch():
                a = np.zeros((4, 3))
                b = np.zeros((5, 2))
                return np.concatenate([a, b], axis=0)

            def project():
                m = np.zeros((4, 3))
                v = np.zeros((5, 2))
                return m @ v
            """
        },
        select=["RL305"],
    )
    messages = sorted(f.message for f in active(findings))
    assert len(messages) == 2
    assert "matmul inner dimensions disagree: 3 vs 5" in messages[0]
    assert "operands disagree on dimension 1: 3 vs 2" in messages[1]


def test_rl305_quiet_on_compatible_and_symbolic_shapes(tmp_path):
    findings, _ = lint(
        tmp_path,
        {
            "src/repro/core/kernel.py": """\
            import numpy as np

            def stitch(n):
                a = np.zeros((n, 3))
                b = np.zeros((n, 3))
                return np.concatenate([a, b], axis=0)

            def project():
                m = np.zeros((4, 3))
                v = np.zeros((3, 2))
                return m @ v
            """
        },
        select=["RL305"],
    )
    assert active(findings) == []


@pytest.mark.parametrize("rule", sorted(RL3XX_FIRES))
def test_rl3xx_inline_disable_records_suppression(tmp_path, rule):
    files, bad_line = RL3XX_FIRES[rule]
    patched = {
        rel: text.replace(
            bad_line, f"{bad_line}  # reprolint: disable={rule}"
        )
        for rel, text in files.items()
    }
    findings, _ = lint(tmp_path, patched, select=[rule])
    assert active(findings) == []
    assert [f.rule for f in findings if f.suppressed] == [rule]


@pytest.mark.parametrize("rule", sorted(RL3XX_FIRES))
def test_rl3xx_baseline_round_trip(tmp_path, rule):
    files, _bad_line = RL3XX_FIRES[rule]
    findings, meta = lint(tmp_path, files, select=[rule])
    assert len(active(findings)) == 1
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, findings, meta["lines_of"])
    findings, meta = lint(
        tmp_path,
        files,
        select=[rule],
        use_baseline=True,
        baseline_path=baseline_path,
    )
    assert active(findings) == []
    assert [f.rule for f in findings if f.suppressed == "baseline"] == [rule]
    assert meta["stale_baseline"] == []


def test_protocol_digest_changes_the_cache_key(tmp_path, monkeypatch):
    """Editing a protocol machine must invalidate cached findings the
    same way editing LintConfig does."""
    from tools.reprolint import cache as cache_mod

    cache_path = tmp_path / "cache.json"
    source = tmp_path / "src" / "app.py"
    source.parent.mkdir(parents=True)
    source.write_text(textwrap.dedent(SHM_DOUBLE_RELEASE))

    run(
        tmp_path, ["src"], select=frozenset({"RL301"}),
        use_baseline=False, baseline_path=None, jobs=1,
        cache_path=cache_path,
    )
    _, meta = run(
        tmp_path, ["src"], select=frozenset({"RL301"}),
        use_baseline=False, baseline_path=None, jobs=1,
        cache_path=cache_path,
    )
    assert meta["cache"]["hits"] >= 1

    monkeypatch.setattr(
        cache_mod, "protocols_digest", lambda: "edited-protocol-table"
    )
    _, meta = run(
        tmp_path, ["src"], select=frozenset({"RL301"}),
        use_baseline=False, baseline_path=None, jobs=1,
        cache_path=cache_path,
    )
    assert meta["cache"]["hits"] == 0


def test_stale_baseline_fails_run_and_prune_recovers(tmp_path, capsys):
    src = tmp_path / "src" / "repro" / "util"
    src.mkdir(parents=True)
    (src / "defaults.py").write_text("def f(items=[]):\n    return items\n")
    baseline = tmp_path / "baseline.json"
    args = [
        "src", "--root", str(tmp_path), "--select", "RL007",
        "--jobs", "1", "--baseline", str(baseline),
    ]
    assert reprolint_main([*args, "--write-baseline"]) == 0
    assert reprolint_main(args) == 0

    # Fixing the defect leaves the entry stale: the run must fail
    # until the baseline is pruned back to reality.
    (src / "defaults.py").write_text("def f(items=None):\n    return items\n")
    assert reprolint_main(args) == 1
    out = capsys.readouterr().out
    assert "stale baseline entry" in out
    assert "--prune-baseline" in out

    assert reprolint_main([*args, "--prune-baseline"]) == 0
    assert json.loads(baseline.read_text())["entries"] == []
    assert reprolint_main(args) == 0


def test_prune_baseline_rejects_conflicting_flags(tmp_path):
    with pytest.raises(SystemExit):
        reprolint_main(
            [
                "src", "--root", str(tmp_path),
                "--prune-baseline", "--no-baseline",
            ]
        )


# --------------------------------------------- incremental mode


def test_cache_warm_run_reuses_results(tmp_path):
    files = {"src/app.py": RACY_DAEMON}
    cache_path = tmp_path / "cache.json"
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))

    findings, meta = run(
        tmp_path, ["src"], config=None, select=frozenset({"RL201"}),
        use_baseline=False, baseline_path=None, jobs=1,
        cache_path=cache_path,
    )
    assert [f.rule for f in active(findings)] == ["RL201"]
    assert meta["cache"]["hits"] == 0

    findings, meta = run(
        tmp_path, ["src"], config=None, select=frozenset({"RL201"}),
        use_baseline=False, baseline_path=None, jobs=1,
        cache_path=cache_path,
    )
    assert [f.rule for f in active(findings)] == ["RL201"]
    assert meta["cache"]["misses"] == 0
    assert meta["cache"]["hits"] >= 1
    assert meta["cache"]["program_hit"] is True
    assert meta["timing"]["files_analyzed"] == 0


def test_cache_invalidates_on_edit_and_select_change(tmp_path):
    cache_path = tmp_path / "cache.json"
    source = tmp_path / "src" / "app.py"
    source.parent.mkdir(parents=True)
    source.write_text(textwrap.dedent(RACY_DAEMON))

    run(
        tmp_path, ["src"], config=None, select=frozenset({"RL201"}),
        use_baseline=False, baseline_path=None, jobs=1,
        cache_path=cache_path,
    )
    source.write_text(textwrap.dedent(RACY_DAEMON) + "\n# trailing\n")
    _, meta = run(
        tmp_path, ["src"], config=None, select=frozenset({"RL201"}),
        use_baseline=False, baseline_path=None, jobs=1,
        cache_path=cache_path,
    )
    assert meta["cache"]["misses"] == 1
    # A different --select is a different config digest: cold again.
    _, meta = run(
        tmp_path, ["src"], config=None, select=frozenset({"RL202"}),
        use_baseline=False, baseline_path=None, jobs=1,
        cache_path=cache_path,
    )
    assert meta["cache"]["hits"] == 0


def _git(root, *argv):
    import subprocess

    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *argv],
        cwd=root, check=True, capture_output=True,
    )


def test_changed_only_scans_the_dependency_cone(tmp_path):
    files = {
        "src/base.py": "VALUE = 1\n",
        "src/mid.py": "from base import VALUE\n\nDOUBLE = VALUE * 2\n",
        "src/leaf.py": "ANSWER = 42\n",
    }
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-qm", "seed")

    (tmp_path / "src/base.py").write_text("VALUE = 2\n")
    _, meta = run(
        tmp_path, ["src"], config=None, select=frozenset({"RL201"}),
        use_baseline=False, baseline_path=None, jobs=1,
        cache_path=tmp_path / "cache.json", changed_only=True,
    )
    # base.py changed; mid.py imports it (reverse cone); leaf.py is
    # untouched and must not be scanned.
    assert meta["timing"]["changed_only"] is True
    assert meta["timing"]["files_analyzed"] == 2


# --------------------------------------------- composite gate driver


def test_all_gates_composite_exit_and_json(tmp_path, capsys):
    source = tmp_path / "src" / "app.py"
    source.parent.mkdir(parents=True)
    source.write_text('"""Documented module."""\n\nVALUE = 1\n')
    out = tmp_path / "report.json"
    code = reprolint_main(
        [
            "--root", str(tmp_path), "--all-gates",
            "--json-out", str(out), "src",
        ]
    )
    assert code == 0
    capsys.readouterr()
    report = json.loads(out.read_text())
    names = [gate["name"] for gate in report["gates"]]
    assert names == [
        "reprolint", "mypy", "type-coverage", "docstrings", "doc-links"
    ]
    assert all(
        gate["status"] in ("ok", "skipped") for gate in report["gates"]
    )
    assert report["timing"]["files_analyzed"] == 1


def test_all_gates_fails_when_lint_fails(tmp_path, capsys):
    source = tmp_path / "src" / "app.py"
    source.parent.mkdir(parents=True)
    source.write_text(textwrap.dedent(RACY_DAEMON))
    code = reprolint_main(
        ["--root", str(tmp_path), "--all-gates", "--select", "RL201", "src"]
    )
    capsys.readouterr()
    assert code == 1
