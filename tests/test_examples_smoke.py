"""Smoke tests: the example scripts must run end to end.

The examples are the documented entry points; import their modules and
execute ``main()`` so a refactor that breaks the public API fails CI,
not a user.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "bogon" in out
        assert "recall" in out

    def test_offline_pipeline(self, capsys):
        _load("offline_pipeline").main()
        out = capsys.readouterr().out
        assert "exported" in out and "reloaded" in out
        assert "ingress whitelist" in out

    def test_ixp_study_tiny(self, capsys, monkeypatch):
        module = _load("ixp_study")
        monkeypatch.setattr(sys, "argv", ["ixp_study.py", "--preset", "tiny"])
        module.main()
        out = capsys.readouterr().out
        assert "Measurement study" in out
        assert "Beyond the paper" in out
