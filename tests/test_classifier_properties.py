"""Property tests for the classifier over randomised flows.

These run the real pipeline of a built world against synthetic flow
tables with arbitrary sources and check the structural guarantees the
method promises for *any* input, not just generator output.
"""

import numpy as np
import pytest

from repro.core import TrafficClass
from repro.datasets.bogons import bogon_prefix_set
from repro.ixp.flows import PROTO_UDP, FlowTable, TruthLabel


def random_flows(world, rng, n=4000):
    members = np.array(world.ixp.member_asns)
    return FlowTable(
        src=rng.integers(0, 2**32, size=n, dtype=np.uint64),
        dst=rng.integers(0, 2**32, size=n, dtype=np.uint64),
        proto=np.full(n, PROTO_UDP),
        src_port=rng.integers(0, 65536, size=n),
        dst_port=rng.integers(0, 65536, size=n),
        packets=rng.integers(1, 10, size=n),
        bytes=rng.integers(40, 1500, size=n),
        member=rng.choice(members, size=n),
        dst_member=rng.choice(members, size=n),
        time=rng.integers(0, 1000, size=n),
        truth=np.full(n, int(TruthLabel.LEGIT)),
    )


@pytest.fixture(scope="module")
def random_result(tiny_world):
    rng = np.random.default_rng(99)
    flows = random_flows(tiny_world, rng)
    return flows, tiny_world.classifier.classify(flows)


class TestClassifierInvariants:
    def test_every_flow_exactly_one_class(self, random_result):
        _flows, result = random_result
        for approach in result.approaches:
            labels = result.label_vector(approach)
            assert set(np.unique(labels)) <= {0, 1, 2, 3}

    def test_bogon_matches_bogon_list_exactly(self, random_result):
        flows, result = random_result
        expected = bogon_prefix_set().contains_many(flows.src)
        actual = result.class_mask("full+orgs", TrafficClass.BOGON)
        assert (expected == actual).all()

    def test_unrouted_matches_rib_complement(self, random_result, tiny_world):
        flows, result = random_result
        bogon = bogon_prefix_set().contains_many(flows.src)
        routed = tiny_world.rib.routed_space().contains_many(flows.src)
        expected = ~bogon & ~routed
        actual = result.class_mask("full+orgs", TrafficClass.UNROUTED)
        assert (expected == actual).all()

    def test_agnostic_classes_identical_across_approaches(self, random_result):
        _flows, result = random_result
        reference_bogon = result.class_mask("naive", TrafficClass.BOGON)
        reference_unrouted = result.class_mask("naive", TrafficClass.UNROUTED)
        for approach in result.approaches:
            assert (
                result.class_mask(approach, TrafficClass.BOGON)
                == reference_bogon
            ).all()
            assert (
                result.class_mask(approach, TrafficClass.UNROUTED)
                == reference_unrouted
            ).all()

    def test_org_merge_only_shrinks_invalid(self, random_result):
        _flows, result = random_result
        for base, merged in (
            ("naive", "naive+orgs"),
            ("cc", "cc+orgs"),
            ("full", "full+orgs"),
        ):
            base_invalid = result.class_mask(base, TrafficClass.INVALID)
            merged_invalid = result.class_mask(merged, TrafficClass.INVALID)
            # Merging org rows can only validate flows, never invalidate.
            assert not (merged_invalid & ~base_invalid).any()

    def test_classification_deterministic(self, tiny_world):
        rng = np.random.default_rng(7)
        flows = random_flows(tiny_world, rng, n=1000)
        first = tiny_world.classifier.classify(flows)
        second = tiny_world.classifier.classify(flows)
        for approach in first.approaches:
            assert (
                first.label_vector(approach) == second.label_vector(approach)
            ).all()

    def test_empty_table(self, tiny_world):
        result = tiny_world.classifier.classify(FlowTable.empty())
        for approach in result.approaches:
            assert result.label_vector(approach).size == 0
        cell = result.contribution("full+orgs", TrafficClass.BOGON)
        assert cell.members == 0

    def test_unknown_member_flagged_for_routed_sources(self, tiny_world):
        """A flow from an AS never seen in BGP can't be valid for any
        routed source."""
        rng = np.random.default_rng(3)
        flows = random_flows(tiny_world, rng, n=500)
        flows.member[:] = 999_999
        result = tiny_world.classifier.classify(flows)
        labels = result.label_vector("full+orgs")
        routed = tiny_world.rib.routed_space().contains_many(flows.src)
        bogon = bogon_prefix_set().contains_many(flows.src)
        routed_rows = routed & ~bogon
        assert (
            labels[routed_rows] == int(TrafficClass.INVALID)
        ).all()
