"""Tests for the Figure 1a categories and topology statistics."""

import pytest

from repro.analysis.fig1_categories import compute_address_categories
from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.stats import compute_topology_stats


class TestAddressCategories:
    @pytest.fixture(scope="class")
    def categories(self, bgp_only_world):
        return compute_address_categories(bgp_only_world.rib)

    def test_partition_tiles_ipv4(self, categories):
        assert categories.tiles_exactly()

    def test_bogon_share_matches_paper(self, categories):
        assert categories.bogon == pytest.approx(0.138, abs=0.01)

    def test_routable_share_matches_paper(self, categories):
        assert categories.routable == pytest.approx(0.862, abs=0.01)

    def test_routed_below_routable(self, categories):
        assert 0 < categories.routed < categories.routable
        assert categories.unrouted > 0

    def test_render(self, categories):
        assert "Fig.1a" in categories.render()

    def test_empty_rib(self):
        from repro.bgp.rib import GlobalRIB

        categories = compute_address_categories(GlobalRIB())
        assert categories.routed == 0.0
        assert categories.tiles_exactly()


class TestTopologyStats:
    @pytest.fixture(scope="class")
    def stats(self):
        topo = generate_topology(TopologyConfig(n_ases=500, seed=13))
        return compute_topology_stats(topo)

    def test_counts(self, stats):
        assert stats.n_ases == 500
        assert stats.n_links == (
            stats.n_transit_links
            + stats.n_peering_links
            + stats.n_sibling_links
        )

    def test_mostly_stubs(self, stats):
        assert 0.4 < stats.stub_share < 0.95

    def test_multihoming_common(self, stats):
        assert stats.multihomed_share > 0.3

    def test_heavy_tail(self, stats):
        assert stats.median_cone <= 2
        assert stats.max_cone > 50
        assert stats.cone_tail_exponent > 0.2

    def test_degrees(self, stats):
        assert stats.mean_degree > 1.5
        assert stats.max_degree > 20

    def test_render(self, stats):
        text = stats.render()
        assert "cones:" in text and "500 ASes" in text
