"""Zero-copy shared-memory transport: parity, faults, leak audit.

The shm ring must be invisible in the results — byte-identical labels
and counters versus the pickle transport — while surviving corrupted
slot headers, dead workers holding ring slots, and injected unlink
leaks without ever abandoning a ``/dev/shm`` segment. The suite runs
under whichever multiprocessing start method ``MP_START_METHOD``
selects; CI's resilience matrix exercises both ``fork`` and ``spawn``.
"""

import os

import numpy as np
import pytest

from repro.bgp.messages import RouteObservation
from repro.bgp.rib import GlobalRIB
from repro.cones.full_cone import FullConeValidSpace
from repro.cones.naive import NaiveValidSpace
from repro.core import FailurePolicy, SpoofingClassifier, TrafficClass
from repro.core.shmring import (
    FlowRing,
    WorkerRing,
    corrupt_staged_header,
    stage_read,
)
from repro.errors import TransportError
from repro.ixp.flows import PROTO_TCP, FlowTable, TruthLabel
from repro.net.addr import addr_to_int
from repro.net.prefix import Prefix
from repro.obs import current_metrics
from repro.testing import FaultPlan, FaultSpec
from repro.util import (
    cleanup_leaked,
    create_segment,
    inject_unlink_leak,
    leaked_segments,
    release_segment,
)

#: Fast backoff/timeout knobs so fault tests stay sub-second-ish.
FAST_RETRY = FailurePolicy(
    mode="retry", max_retries=2, chunk_timeout=20.0, backoff_base=0.01
)


def obs(prefix, *path):
    return RouteObservation(Prefix.parse(prefix), tuple(path), "rrc00")


@pytest.fixture()
def toy():
    rib = GlobalRIB()
    rib.add(obs("60.0.0.0/16", 20, 1, 10, 100))
    rib.add(obs("20.0.0.0/16", 10, 1, 20, 200))
    classifier = SpoofingClassifier(
        rib, {"naive": NaiveValidSpace(rib), "full": FullConeValidSpace(rib)}
    )
    return rib, classifier


#: (src, member) choices spanning every class under the toy RIB.
CHOICES = (
    ("60.0.5.5", 100),
    ("20.0.0.9", 200),
    ("60.0.5.5", 200),  # invalid under full
    ("9.9.9.9", 100),  # unrouted
    ("10.1.2.3", 100),  # bogon
    ("60.0.7.7", 10),
    ("20.0.1.1", 9999),  # unknown member → invalid
)


def random_table(n, seed=7):
    rng = np.random.default_rng(seed)
    pick = rng.integers(0, len(CHOICES), n)
    return FlowTable(
        src=np.array(
            [addr_to_int(CHOICES[i][0]) for i in pick], dtype=np.uint64
        ),
        dst=np.full(n, addr_to_int("20.0.0.1"), dtype=np.uint64),
        proto=np.full(n, PROTO_TCP),
        src_port=np.full(n, 1000),
        dst_port=np.full(n, 80),
        packets=np.full(n, 2),
        bytes=np.full(n, 120),
        member=np.array([CHOICES[i][1] for i in pick], dtype=np.int64),
        dst_member=np.full(n, 20, dtype=np.int64),
        time=np.arange(n, dtype=np.int64),
        truth=np.full(n, int(TruthLabel.LEGIT), dtype=np.uint8),
    )


def _shm_segments():
    """POSIX shared-memory segment names currently in /dev/shm.

    Only ``psm_*`` entries count: pool-internal ``sem.mp-*``
    semaphores come and go with the multiprocessing context's own
    lifecycle (the resource tracker reclaims them lazily under
    spawn) and are not this transport's to audit.
    """
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return set()
    return {
        name for name in os.listdir("/dev/shm") if name.startswith("psm_")
    }


@pytest.fixture()
def dev_shm_clean():
    """Assert the run leaves no shared-memory segment behind."""
    before = _shm_segments()
    yield
    after = _shm_segments()
    assert after == before, f"leaked segments: {sorted(after - before)}"


def assert_parity(classifier, reference, result):
    for name in classifier.approach_names:
        assert (
            result.label_vector(name) == reference.label_vector(name)
        ).all(), name
        for cls in TrafficClass:
            assert (
                result.class_counts(name)[cls]
                == reference.class_counts(name)[cls]
            )


class TestFlowRing:
    def test_write_read_roundtrip_bit_equal(self, dev_shm_clean):
        table = random_table(100)
        ring = FlowRing.create(slots=2, capacity=128)
        try:
            worker = WorkerRing.attach(ring.spec)
            slot = ring.acquire(timeout=1.0)
            generation = ring.write(slot, table, chunk_index=0)
            chunk = worker.read(slot, generation, len(table), 0)
            for name in (
                "src", "dst", "proto", "src_port", "dst_port",
                "packets", "bytes", "member", "dst_member", "time",
                "truth",
            ):
                assert (
                    getattr(chunk, name) == getattr(table, name)
                ).all(), name
            ring.release(slot)
            del chunk  # zero-copy views must drop before the unmap
            worker.detach()
        finally:
            ring.destroy()

    def test_detach_closes_mapping_but_parent_survives(self, dev_shm_clean):
        # detach() must drop every zero-copy view and close only the
        # worker-side mapping: the parent keeps writing, and a fresh
        # attachment over the same spec reads the new data.
        table = random_table(16)
        ring = FlowRing.create(slots=1, capacity=32)
        try:
            worker = WorkerRing.attach(ring.spec)
            slot = ring.acquire(timeout=1.0)
            generation = ring.write(slot, table, chunk_index=0)
            chunk = worker.read(slot, generation, len(table), 0)
            assert (chunk.src == table.src).all()
            del chunk
            worker.detach()

            ring.release(slot)
            other = random_table(16, seed=11)
            slot = ring.acquire(timeout=1.0)
            generation = ring.write(slot, other, chunk_index=1)
            rejoined = WorkerRing.attach(ring.spec)
            chunk = rejoined.read(slot, generation, len(other), 1)
            assert (chunk.src == other.src).all()
            del chunk
            rejoined.detach()
        finally:
            ring.destroy()

    def test_generation_mismatch_raises_transport_error(self, dev_shm_clean):
        table = random_table(10)
        ring = FlowRing.create(slots=1, capacity=16)
        try:
            worker = WorkerRing.attach(ring.spec)
            slot = ring.acquire(timeout=1.0)
            generation = ring.write(slot, table, chunk_index=0)
            with pytest.raises(TransportError):
                worker.read(slot, generation + 1, len(table), 0)
            worker.detach()
        finally:
            ring.destroy()

    def test_oversize_chunk_raises_transport_error(self, dev_shm_clean):
        ring = FlowRing.create(slots=1, capacity=8)
        try:
            slot = ring.acquire(timeout=1.0)
            with pytest.raises(TransportError):
                ring.write(slot, random_table(9), chunk_index=0)
        finally:
            ring.destroy()

    def test_acquire_timeout_is_loud(self, dev_shm_clean):
        ring = FlowRing.create(slots=1, capacity=8)
        try:
            ring.acquire(timeout=1.0)
            with pytest.raises(TransportError):
                ring.acquire(timeout=0.05)
        finally:
            ring.destroy()

    def test_header_corruption_detected_and_repairable(self, dev_shm_clean):
        # The slot_corrupt fault's exact mechanics, in-process: a
        # corrupted header fails the integrity check, the parent's
        # refresh_header() restores it, and the retry reads clean.
        table = random_table(20)
        ring = FlowRing.create(slots=1, capacity=32)
        try:
            worker = WorkerRing.attach(ring.spec)
            slot = ring.acquire(timeout=1.0)
            generation = ring.write(slot, table, chunk_index=3)
            stage_read(worker, slot)
            assert corrupt_staged_header()
            with pytest.raises(TransportError):
                worker.read(slot, generation, len(table), 3)
            ring.refresh_header(slot)
            chunk = worker.read(slot, ring.generation(slot), len(table), 3)
            assert (chunk.src == table.src).all()
            del chunk
            worker.detach()
        finally:
            ring.destroy()


class TestShmParity:
    def test_unsupervised_bit_equal_to_pickle(self, toy, dev_shm_clean):
        _rib, classifier = toy
        table = random_table(600)
        pickled = classifier.classify_stream(
            table, n_workers=2, chunk_rows=128, keep_labels=True
        )
        shm = classifier.classify_stream(
            table, n_workers=2, chunk_rows=128, keep_labels=True,
            transport="shm",
        )
        assert_parity(classifier, pickled, shm)
        assert shm.n_flows == 600

    def test_supervised_bit_equal_to_pickle(self, toy, dev_shm_clean):
        _rib, classifier = toy
        table = random_table(600)
        pickled = classifier.classify_stream(
            table, chunk_rows=128, keep_labels=True
        )
        shm = classifier.classify_stream(
            table, n_workers=2, chunk_rows=128, keep_labels=True,
            transport="shm", policy=FAST_RETRY,
        )
        assert_parity(classifier, pickled, shm)
        assert shm.complete

    def test_oversize_chunk_falls_back_to_pickle(self, toy, dev_shm_clean):
        # Pre-chunked input larger than the ring capacity must take
        # the pickle fallback lane, not fail — and still agree with a
        # pure-pickle run over the same chunks.
        _rib, classifier = toy
        table = random_table(400)
        rows = np.arange(400)
        chunks = [
            table.select(rows[:100]),
            table.select(rows[100:350]),
            table.select(rows[350:]),
        ]
        current_metrics().clear()
        shm = classifier.classify_stream(
            iter(chunks), n_workers=2, chunk_rows=128, transport="shm"
        )
        assert (
            current_metrics().counter("shm.fallback_chunks").value >= 1
        )
        pickled = classifier.classify_stream(iter(chunks), n_workers=2)
        for name in classifier.approach_names:
            assert shm.class_counts(name) == pickled.class_counts(name)
        assert shm.n_flows == 400

    def test_transport_validated(self, toy):
        _rib, classifier = toy
        with pytest.raises(ValueError):
            classifier.classify_stream(random_table(8), transport="carrier")


class TestShmFaults:
    def test_slot_corruption_repaired_by_retry(self, toy, dev_shm_clean):
        _rib, classifier = toy
        table = random_table(600)
        clean = classifier.classify_stream(
            table, chunk_rows=128, keep_labels=True
        )
        plan = FaultPlan((FaultSpec("slot_corrupt", 1, attempt=1),))
        stream = classifier.classify_stream(
            table, n_workers=2, chunk_rows=128, keep_labels=True,
            transport="shm", policy=FAST_RETRY, fault_injector=plan,
        )
        assert stream.failures.chunks_retried >= 1
        assert stream.complete
        assert_parity(classifier, clean, stream)

    def test_slot_corruption_noop_under_pickle(self, toy, dev_shm_clean):
        # The fault targets the staged ring read; with no ring armed
        # it must be inert, so pickle runs see no failure at all.
        _rib, classifier = toy
        table = random_table(300)
        plan = FaultPlan((FaultSpec("slot_corrupt", 1, attempt=0),))
        stream = classifier.classify_stream(
            table, n_workers=2, chunk_rows=128, policy=FAST_RETRY,
            fault_injector=plan,
        )
        assert stream.complete
        assert stream.failures.chunks_retried == 0

    def test_dead_worker_releases_ring_slots(self, toy, dev_shm_clean):
        # A worker killed mid-gather is reclaimed by the supervisor;
        # its ring slots must return to the pool (else the bounded
        # ring would deadlock) and the segment must not leak.
        _rib, classifier = toy
        table = random_table(600)
        clean = classifier.classify_stream(
            table, chunk_rows=128, keep_labels=True
        )
        plan = FaultPlan((FaultSpec("die", 1),))
        policy = FailurePolicy(
            mode="retry", max_retries=1, chunk_timeout=1.5,
            backoff_base=0.01,
        )
        stream = classifier.classify_stream(
            table, n_workers=2, chunk_rows=128, keep_labels=True,
            transport="shm", policy=policy, fault_injector=plan,
        )
        assert stream.failures
        assert stream.complete
        assert_parity(classifier, clean, stream)

    def test_oversize_fallback_survives_worker_death_under_spawn(
        self, toy, dev_shm_clean, monkeypatch
    ):
        # The pickle-fallback lane and the supervisor's dead-worker
        # reclaim must compose: chunk 1 exceeds the ring capacity and
        # rides pickle, the worker dies mid-way through that very
        # chunk, and the retry still lands bit-equal results — under
        # the spawn start method, where nothing is inherited.
        monkeypatch.setenv("MP_START_METHOD", "spawn")
        _rib, classifier = toy
        table = random_table(400)
        rows = np.arange(400)
        chunks = [
            table.select(rows[:100]),
            table.select(rows[100:350]),  # 250 rows > capacity 128
            table.select(rows[350:]),
        ]
        clean = classifier.classify_stream(iter(chunks), n_workers=2)
        current_metrics().clear()
        plan = FaultPlan((FaultSpec("die", 1),))
        policy = FailurePolicy(
            mode="retry", max_retries=1, chunk_timeout=2.0,
            backoff_base=0.01,
        )
        stream = classifier.classify_stream(
            iter(chunks), n_workers=2, chunk_rows=128, transport="shm",
            policy=policy, fault_injector=plan,
        )
        assert (
            current_metrics().counter("shm.fallback_chunks").value >= 1
        )
        assert stream.failures
        assert stream.complete
        for name in classifier.approach_names:
            assert stream.class_counts(name) == clean.class_counts(name)
        assert stream.n_flows == 400

    def test_degrade_drops_chunk_and_releases_slot(self, toy, dev_shm_clean):
        _rib, classifier = toy
        table = random_table(512)
        plan = FaultPlan((FaultSpec("corrupt", 1, attempt=0, scope="any"),))
        stream = classifier.classify_stream(
            table, n_workers=2, chunk_rows=128, transport="shm",
            policy="degrade", fault_injector=plan,
        )
        assert not stream.complete
        assert stream.failures.chunks_dropped == 1
        assert stream.n_flows == 512 - 128


class TestLeakAudit:
    def test_injected_leak_caught_and_reclaimed(self, dev_shm_clean):
        current_metrics().clear()
        inject_unlink_leak(1)
        segment = create_segment(4096, purpose="leak-audit-test")
        name = segment.name
        release_segment(segment, unlink=True)
        assert name in leaked_segments()
        assert current_metrics().counter("shm.segments_leaked").value == 1
        reclaimed = cleanup_leaked()
        assert name in reclaimed
        assert leaked_segments() == []

    def test_cleanup_idempotent(self, dev_shm_clean):
        assert cleanup_leaked() == []


class TestSketchTriageStream:
    def test_triage_bounds_match_exact_engine(self, toy, dev_shm_clean):
        _rib, classifier = toy
        table = random_table(600)
        exact = classifier.classify(table)
        exact_counts = {
            cls.name.lower(): int(
                (exact.label_vector("naive") == int(cls)).sum()
            )
            for cls in TrafficClass
        }
        serial = classifier.classify_stream(
            table, chunk_rows=128, triage="sketch"
        )
        parallel = classifier.classify_stream(
            table, n_workers=2, chunk_rows=128, triage="sketch",
            transport="shm",
        )
        for stream in (serial, parallel):
            triage = stream.triage
            assert triage is not None
            counts = triage.class_counts()
            # Bogon/unrouted run exactly; the signature makes invalid
            # a lower bound and valid an upper bound.
            assert counts["bogon"] == exact_counts["bogon"]
            assert counts["unrouted"] == exact_counts["unrouted"]
            assert counts["invalid"] <= exact_counts["invalid"]
            assert counts["valid"] >= exact_counts["valid"]
            assert triage.n_flows == 600
            assert "sketch triage" in triage.render()
        # Serial and parallel fold the same digests: identical totals.
        assert (
            serial.triage.class_counts() == parallel.triage.class_counts()
        )

    def test_triage_rejects_keep_labels(self, toy):
        _rib, classifier = toy
        with pytest.raises(ValueError):
            classifier.classify_stream(
                random_table(8), triage="sketch", keep_labels=True
            )

    def test_triage_name_validated(self, toy):
        _rib, classifier = toy
        with pytest.raises(ValueError):
            classifier.classify_stream(random_table(8), triage="hyperloglog")
