"""Tests for the prefix allocator."""

import numpy as np
import pytest

from repro.datasets.bogons import bogon_prefix_set
from repro.net.prefixset import PrefixSet
from repro.topology.prefixalloc import AllocationError, PrefixAllocator


class TestAllocation:
    def test_allocations_are_disjoint(self, rng):
        allocator = PrefixAllocator(rng)
        prefixes = [allocator.allocate(int(rng.integers(16, 25))) for _ in range(300)]
        total = sum(p.num_addresses for p in prefixes)
        assert PrefixSet(prefixes).num_addresses == total

    def test_allocations_avoid_bogons(self, rng):
        allocator = PrefixAllocator(rng)
        bogons = bogon_prefix_set()
        for _ in range(200):
            prefix = allocator.allocate(20)
            assert not (PrefixSet([prefix]) & bogons)

    def test_natural_alignment(self, rng):
        allocator = PrefixAllocator(rng)
        for _ in range(100):
            prefix = allocator.allocate(18)
            assert prefix.network % prefix.num_addresses == 0

    def test_rejects_silly_lengths(self, rng):
        allocator = PrefixAllocator(rng)
        with pytest.raises(ValueError):
            allocator.allocate(4)
        with pytest.raises(ValueError):
            allocator.allocate(33)

    def test_allocate_many(self, rng):
        allocator = PrefixAllocator(rng)
        prefixes = allocator.allocate_many([16, 20, 24])
        assert [p.length for p in prefixes] == [16, 20, 24]

    def test_allocated_space_covers_allocations(self, rng):
        allocator = PrefixAllocator(rng)
        prefixes = [allocator.allocate(20) for _ in range(50)]
        space = allocator.allocated_space()
        for prefix in prefixes:
            assert space.contains_prefix(prefix) or prefix.first in space

    def test_deterministic_for_seed(self):
        a = PrefixAllocator(np.random.default_rng(5))
        b = PrefixAllocator(np.random.default_rng(5))
        assert [a.allocate(20) for _ in range(20)] == [
            b.allocate(20) for _ in range(20)
        ]

    def test_uneven_region_density(self, rng):
        # The pareto region weights should concentrate allocations.
        allocator = PrefixAllocator(rng)
        firsts = [allocator.allocate(20).network >> 24 for _ in range(400)]
        unique = len(set(firsts))
        assert unique < 150  # far fewer than the ~200 available /8s
