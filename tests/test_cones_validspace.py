"""Tests for the three valid-space approaches and the org merge."""

import numpy as np
import pytest

from repro.bgp.messages import RouteObservation
from repro.bgp.rib import GlobalRIB
from repro.cones.customer_cone import CustomerConeValidSpace
from repro.cones.full_cone import FullConeValidSpace
from repro.cones.naive import NaiveValidSpace
from repro.cones.orgs import apply_org_merge
from repro.net.prefix import Prefix


def obs(prefix, *path):
    return RouteObservation(Prefix.parse(prefix), tuple(path), "rrc00")


@pytest.fixture()
def toy_rib():
    """Two chains meeting at a T1 pair:

    paths as observed (monitor-first, origin-last):
      (10, 1, 2, 20, 200)   — origin 200 behind 20 behind T1b=2
      (20, 2, 1, 10, 100)   — origin 100 behind 10 behind T1a=1
    Prefixes: 100 → 10.0.0.0/16, 200 → 20.0.0.0/16,
              10 → 30.0.0.0/16, 20 → 40.0.0.0/16.

    Note the stubs (100, 200) are never used as monitors: a monitor
    peer is, by the method's definition, upstream of everything it
    observes, which would make a stub monitor valid for everything.
    """
    rib = GlobalRIB()
    rib.add(obs("10.0.0.0/16", 20, 2, 1, 10, 100))
    rib.add(obs("20.0.0.0/16", 10, 1, 2, 20, 200))
    rib.add(obs("30.0.0.0/16", 20, 2, 1, 10))
    rib.add(obs("40.0.0.0/16", 10, 1, 2, 20))
    return rib


class TestFullCone:
    def test_own_prefix_always_valid(self, toy_rib):
        full = FullConeValidSpace(toy_rib)
        pid, oidx = toy_rib.lookup(Prefix.parse("10.0.0.0/16").first)
        assert full.is_valid(100, pid, oidx)

    def test_upstream_valid_for_downstream(self, toy_rib):
        full = FullConeValidSpace(toy_rib)
        pid, oidx = toy_rib.lookup(Prefix.parse("10.0.0.0/16").first)
        # AS10 is upstream of origin 100 on observed paths.
        assert full.is_valid(10, pid, oidx)
        assert full.is_valid(1, pid, oidx)

    def test_unrelated_stub_invalid(self, toy_rib):
        full = FullConeValidSpace(toy_rib)
        pid, oidx = toy_rib.lookup(Prefix.parse("10.0.0.0/16").first)
        assert not full.is_valid(200, pid, oidx)

    def test_cone_asns(self, toy_rib):
        full = FullConeValidSpace(toy_rib)
        assert full.cone_asns(10) >= {10, 100}
        assert full.cone_asns(100) == {100}

    def test_extra_edges_extend_cone(self, toy_rib):
        plain = FullConeValidSpace(toy_rib)
        extended = FullConeValidSpace(toy_rib, extra_edges=[(200, 100)])
        pid, oidx = toy_rib.lookup(Prefix.parse("10.0.0.0/16").first)
        assert not plain.is_valid(200, pid, oidx)
        assert extended.is_valid(200, pid, oidx)

    def test_unknown_member_nothing_valid(self, toy_rib):
        full = FullConeValidSpace(toy_rib)
        pid, oidx = toy_rib.lookup(Prefix.parse("10.0.0.0/16").first)
        assert not full.is_valid(999, pid, oidx)
        assert full.valid_slash24s(999) == 0.0


class TestCustomerCone:
    def test_provider_valid_for_customer(self, toy_rib):
        cc = CustomerConeValidSpace(toy_rib)
        pid, oidx = toy_rib.lookup(Prefix.parse("10.0.0.0/16").first)
        assert cc.is_valid(10, pid, oidx)

    def test_cc_contained_in_full(self, toy_rib):
        cc = CustomerConeValidSpace(toy_rib)
        full = FullConeValidSpace(toy_rib)
        for asn in (1, 2, 10, 20, 100, 200):
            assert cc.valid_slash24s(asn) <= full.valid_slash24s(asn) + 1e-9

    def test_peering_not_in_customer_cone(self, toy_rib):
        # T1a (1) peers with T1b (2): 2's customers are not in 1's CC
        # ... unless inference called the link p2c; with symmetric
        # traffic in both directions it must be PEER here.
        cc = CustomerConeValidSpace(toy_rib)
        from repro.cones.relationships import InferredRelationship

        assert cc.relationships[(1, 2)] is InferredRelationship.PEER
        assert 200 not in cc.cone_asns(1)


class TestNaive:
    def test_on_path_means_valid(self, toy_rib):
        naive = NaiveValidSpace(toy_rib)
        pid = toy_rib.prefix_id(Prefix.parse("10.0.0.0/16"))
        for asn in (100, 10, 1, 2, 20):
            assert naive.is_valid(asn, pid, -1)

    def test_off_path_invalid(self, toy_rib):
        naive = NaiveValidSpace(toy_rib)
        pid = toy_rib.prefix_id(Prefix.parse("30.0.0.0/16"))
        # 100 and 200 never appear on 30/16's paths.
        assert not naive.is_valid(100, pid, -1)
        assert not naive.is_valid(200, pid, -1)

    def test_valid_prefix_ids(self, toy_rib):
        naive = NaiveValidSpace(toy_rib)
        ids = naive.valid_prefix_ids(100)
        assert toy_rib.prefix_id(Prefix.parse("10.0.0.0/16")) in ids

    def test_naive_contained_in_full_sizes(self, toy_rib):
        naive = NaiveValidSpace(toy_rib)
        full = FullConeValidSpace(toy_rib)
        for asn in (1, 2, 10, 20, 100, 200):
            assert naive.valid_slash24s(asn) <= full.valid_slash24s(asn) + 1e-9


class TestOrgMerge:
    def test_merged_row_is_union(self, toy_rib):
        full = FullConeValidSpace(toy_rib)
        merged = apply_org_merge(full, {100: 1, 200: 1})
        pid_a, oidx_a = toy_rib.lookup(Prefix.parse("10.0.0.0/16").first)
        pid_b, oidx_b = toy_rib.lookup(Prefix.parse("20.0.0.0/16").first)
        assert merged.is_valid(100, pid_b, oidx_b)
        assert merged.is_valid(200, pid_a, oidx_a)

    def test_singleton_orgs_unchanged(self, toy_rib):
        full = FullConeValidSpace(toy_rib)
        merged = apply_org_merge(full, {100: 1, 200: 2})
        pid_b, oidx_b = toy_rib.lookup(Prefix.parse("20.0.0.0/16").first)
        assert not merged.is_valid(100, pid_b, oidx_b)

    def test_name_suffix(self, toy_rib):
        full = FullConeValidSpace(toy_rib)
        merged = apply_org_merge(full, {})
        assert merged.name == "full+orgs"

    def test_merge_never_shrinks(self, toy_rib):
        full = FullConeValidSpace(toy_rib)
        merged = apply_org_merge(full, {10: 1, 20: 1, 100: 2, 200: 2})
        for asn in (1, 2, 10, 20, 100, 200):
            assert merged.valid_slash24s(asn) >= full.valid_slash24s(asn) - 1e-9

    def test_merge_works_on_naive(self, toy_rib):
        naive = NaiveValidSpace(toy_rib)
        merged = apply_org_merge(naive, {100: 1, 200: 1})
        pid_b = toy_rib.prefix_id(Prefix.parse("20.0.0.0/16"))
        assert merged.is_valid(100, pid_b, -1)


class TestBulkConsistency:
    def test_valid_mask_matches_scalar(self, toy_rib):
        full = FullConeValidSpace(toy_rib)
        addrs = np.array(
            [
                Prefix.parse("10.0.0.0/16").first,
                Prefix.parse("20.0.0.0/16").first,
                Prefix.parse("30.0.0.0/16").first,
            ],
            dtype=np.uint64,
        )
        pids, oidx = toy_rib.lookup_many(addrs)
        for member in (1, 10, 100, 200):
            mask = full.valid_mask(member, pids, oidx)
            for i in range(len(addrs)):
                assert mask[i] == full.is_valid(member, int(pids[i]), int(oidx[i]))

    def test_negative_ids_invalid(self, toy_rib):
        full = FullConeValidSpace(toy_rib)
        mask = full.valid_mask(
            1, np.array([-1, -1]), np.array([-1, -1])
        )
        assert not mask.any()
