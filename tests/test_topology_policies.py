"""Tests for announcement policies."""

import numpy as np
import pytest

from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.policies import (
    AnnouncementGroup,
    AnnouncementPolicy,
    asymmetric_origins,
    build_policies,
    primary_provider_map,
)


@pytest.fixture(scope="module")
def world():
    topo = generate_topology(TopologyConfig(n_ases=400, seed=21))
    rng = np.random.default_rng(4)
    policies = build_policies(topo, rng, selective_fraction=0.4, deagg_fraction=0.4)
    return topo, policies


class TestAnnouncementGroup:
    def test_announced_to_unrestricted(self):
        group = AnnouncementGroup([], None)
        assert group.announced_to(42)

    def test_announced_to_restricted(self):
        group = AnnouncementGroup([], {1, 2})
        assert group.announced_to(1)
        assert not group.announced_to(3)


class TestBuildPolicies:
    def test_every_origin_has_policy(self, world):
        topo, policies = world
        assert set(policies) == set(topo.ases)

    def test_policy_prefixes_cover_all_announceable(self, world):
        topo, policies = world
        for asn, policy in policies.items():
            node_prefixes = set(topo.node(asn).prefixes)
            policy_prefixes = set(policy.all_prefixes())
            # All node prefixes announced (deagg adds subnets on top).
            assert node_prefixes <= policy_prefixes

    def test_selective_policies_exist(self, world):
        _topo, policies = world
        selective = [p for p in policies.values() if p.kind == "selective"]
        assert selective
        for policy in selective:
            restricted = policy.groups[1]
            assert restricted.first_hops is not None
            assert len(restricted.first_hops) == 1

    def test_selective_keeps_one_open_prefix(self, world):
        topo, policies = world
        for policy in policies.values():
            if policy.kind != "selective":
                continue
            open_group = policy.groups[0]
            assert open_group.first_hops is None
            assert open_group.prefixes  # link visibility preserved

    def test_deagg_policies_announce_subnets(self, world):
        _topo, policies = world
        deagg = [p for p in policies.values() if p.kind == "deagg"]
        assert deagg
        for policy in deagg:
            open_prefixes = policy.groups[0].prefixes
            subnets = policy.groups[1].prefixes
            assert len(subnets) == 2
            parent = subnets[0].supernet()
            assert parent in open_prefixes
            assert subnets[0].supernet() == subnets[1].supernet()

    def test_selective_only_for_multihomed_edge(self, world):
        topo, policies = world
        for asn, policy in policies.items():
            if policy.kind in ("selective", "deagg"):
                node = topo.node(asn)
                assert node.tier == 3
                assert len(node.providers) >= 2

    def test_zero_fractions_mean_all_open(self):
        topo = generate_topology(TopologyConfig(n_ases=150, seed=2))
        policies = build_policies(
            topo, np.random.default_rng(0), 0.0, 0.0
        )
        assert all(p.kind == "open" for p in policies.values())


class TestDerivedMaps:
    def test_primary_provider_map(self, world):
        topo, policies = world
        primaries = primary_provider_map(policies)
        for asn, provider in primaries.items():
            assert provider in topo.node(asn).providers

    def test_asymmetric_origins_are_selective_only(self, world):
        _topo, policies = world
        asymmetric = asymmetric_origins(policies)
        for asn in asymmetric:
            assert policies[asn].kind == "selective"
        deagg = {a for a, p in policies.items() if p.kind == "deagg"}
        assert not (asymmetric & deagg)
