"""Tests for the future-work extensions: WHOIS-augmented cones,
support-pruned cones, stray recognition, filter lists, temporal study."""

import numpy as np
import pytest

from repro.analysis.temporal import temporal_study
from repro.bgp.simulate import simulate_bgp
from repro.cones.pruned import PrunedFullCone, adjacency_support
from repro.cones.whois_augmented import WhoisAugmentedFullCone, whois_policy_edges
from repro.core import (
    TrafficClass,
    build_ingress_acl,
    classify_strays,
    evaluate_acl,
    evaluate_against_truth,
    evaluate_stray_detection,
)
from repro.core.classifier import SpoofingClassifier
from repro.core.straydetect import STRAY_NAT, STRAY_NONE, STRAY_ROUTER
from repro.datasets.ark import run_ark_campaign
from repro.datasets.whois import build_whois
from repro.ixp.flows import TruthLabel


class TestWhoisAugmentedCone:
    def test_policy_edges_bidirectional(self, bgp_only_world):
        whois = build_whois(bgp_only_world.topo)
        edges = set(whois_policy_edges(whois, bgp_only_world.rib))
        for a, b in list(edges)[:50]:
            assert (b, a) in edges

    def test_augmented_cone_is_superset(self, bgp_only_world):
        world = bgp_only_world
        whois = build_whois(world.topo)
        augmented = WhoisAugmentedFullCone(world.rib, whois)
        plain = world.approaches["full"]
        for asn in world.rib.indexer.asns()[:80]:
            assert augmented.valid_slash24s(asn) >= plain.valid_slash24s(asn) - 1e-9

    def test_augmented_reduces_invalid(self, tiny_world):
        whois = build_whois(tiny_world.topo)
        augmented = WhoisAugmentedFullCone(tiny_world.rib, whois)
        classifier = SpoofingClassifier(
            tiny_world.rib,
            {"full": tiny_world.approaches["full"], "full+whois": augmented},
        )
        result = classifier.classify(tiny_world.scenario.flows)
        plain_invalid = result.flows.packets[
            result.class_mask("full", TrafficClass.INVALID)
        ].sum()
        aug_invalid = result.flows.packets[
            result.class_mask("full+whois", TrafficClass.INVALID)
        ].sum()
        assert aug_invalid <= plain_invalid

    def test_augmented_keeps_recall(self, tiny_world):
        whois = build_whois(tiny_world.topo)
        augmented = WhoisAugmentedFullCone(tiny_world.rib, whois)
        classifier = SpoofingClassifier(
            tiny_world.rib, {"full+whois": augmented}
        )
        result = classifier.classify(tiny_world.scenario.flows)
        quality = evaluate_against_truth(result, "full+whois")
        assert quality.recall > 0.8

    def test_mutuality_filter(self, bgp_only_world):
        whois = build_whois(bgp_only_world.topo)
        # Forge a one-sided (stale) policy entry.
        some_asn = next(iter(whois.aut_nums))
        whois.aut_nums[some_asn].imports.add(999_999)
        strict = set(whois_policy_edges(whois, bgp_only_world.rib, True))
        assert (some_asn, 999_999) not in strict


class TestPrunedCone:
    def test_adjacency_support_counts_paths(self, bgp_only_world):
        support = adjacency_support(bgp_only_world.rib)
        assert support
        assert all(count >= 1 for count in support.values())

    def test_pruning_monotone(self, bgp_only_world):
        rib = bgp_only_world.rib
        loose = PrunedFullCone(rib, min_support=1)
        tight = PrunedFullCone(rib, min_support=5)
        assert tight.kept_edges <= loose.kept_edges
        for asn in rib.indexer.asns()[:60]:
            assert tight.valid_slash24s(asn) <= loose.valid_slash24s(asn) + 1e-9

    def test_min_support_one_equals_full(self, bgp_only_world):
        rib = bgp_only_world.rib
        pruned = PrunedFullCone(rib, min_support=1)
        full = bgp_only_world.approaches["full"]
        for asn in rib.indexer.asns()[:60]:
            assert pruned.valid_slash24s(asn) == pytest.approx(
                full.valid_slash24s(asn)
            )

    def test_own_space_survives_pruning(self, bgp_only_world):
        rib = bgp_only_world.rib
        pruned = PrunedFullCone(rib, min_support=10_000)
        assert pruned.kept_edges == 0
        # Reflexivity: every origin remains valid for itself.
        some_origin = rib.origin_of(0)
        pid, oidx = rib.lookup(rib.prefix_by_id(0).first)
        assert pruned.is_valid(some_origin, pid, oidx)


class TestStrayDetection:
    def test_router_strays_recognised(self, tiny_world, rng):
        ark = run_ark_campaign(tiny_world.topo, rng)
        flows = tiny_world.scenario.flows
        strays = flows.select(flows.truth == int(TruthLabel.STRAY_ROUTER))
        verdicts = classify_strays(strays, ark)
        # Most ICMP router strays should be caught (ark coverage < 1).
        assert (verdicts == STRAY_ROUTER).mean() > 0.4

    def test_nat_strays_recognised(self, tiny_world, rng):
        ark = run_ark_campaign(tiny_world.topo, rng)
        flows = tiny_world.scenario.flows
        nat = flows.select(flows.truth == int(TruthLabel.STRAY_NAT))
        verdicts = classify_strays(nat, ark)
        assert (verdicts == STRAY_NAT).mean() > 0.5

    def test_legit_traffic_untouched(self, tiny_world, rng):
        ark = run_ark_campaign(tiny_world.topo, rng)
        flows = tiny_world.scenario.flows
        legit = flows.select(flows.truth == int(TruthLabel.LEGIT))
        verdicts = classify_strays(legit, ark)
        assert (verdicts == STRAY_NONE).all()

    def test_evaluation_quality(self, tiny_world, rng):
        ark = run_ark_campaign(tiny_world.topo, rng)
        quality = evaluate_stray_detection(
            tiny_world.result, "full+orgs", ark
        )
        assert 0.0 <= quality.stray_recall <= 1.0
        assert quality.stray_precision > 0.5
        assert quality.spoofed_retention > 0.8


class TestFilterLists:
    def test_acl_covers_own_space(self, tiny_world):
        world = tiny_world
        member = world.ixp.member_asns[0]
        acl = build_ingress_acl(world.approaches["full+orgs"], member)
        for prefix in world.topo.node(member).prefixes:
            assert acl.contains_prefix(prefix) or prefix.first in acl

    def test_naive_acl_uses_prefix_granularity(self, tiny_world):
        world = tiny_world
        member = world.ixp.member_asns[0]
        acl = build_ingress_acl(world.approaches["naive"], member)
        assert acl.num_addresses > 0

    def test_acl_drops_spoofed_keeps_legit(self, tiny_world):
        world = tiny_world
        flows = world.scenario.flows
        members, counts = np.unique(flows.member, return_counts=True)
        busiest = int(members[np.argmax(counts)])
        acl = build_ingress_acl(world.approaches["full+orgs"], busiest)
        report = evaluate_acl(acl, busiest, flows)
        assert report.flows_seen > 0
        # A big member's conservative cone still drops most spoofed
        # traffic (random sources land inside a large cone sometimes —
        # the paper's "conservative overestimation" caveat) while
        # passing effectively all visible-arrangement legit traffic.
        assert report.spoofed_dropped > 0.5
        assert report.legit_dropped < 0.05

    def test_small_member_acl_is_sharp(self, tiny_world):
        """For a stub member the ACL is small and drops nearly all
        spoofed traffic."""
        world = tiny_world
        flows = world.scenario.flows
        stub_members = [
            asn
            for asn in np.unique(flows.member)
            if world.topo.node(int(asn)).is_stub
        ]
        assert stub_members
        stub = int(stub_members[0])
        acl = build_ingress_acl(world.approaches["full+orgs"], stub)
        report = evaluate_acl(acl, stub, flows)
        routed = world.rib.routed_space().slash24_equivalents
        assert report.acl_slash24s < 0.2 * routed
        if report.flows_seen and report.spoofed_dropped > 0:
            assert report.spoofed_dropped > 0.8

    def test_report_renders(self, tiny_world):
        world = tiny_world
        member = world.ixp.member_asns[0]
        acl = build_ingress_acl(world.approaches["full+orgs"], member)
        report = evaluate_acl(acl, member, world.scenario.flows)
        assert f"AS{member}" in report.render()


class TestTemporalStudy:
    @pytest.fixture(scope="class")
    def observations(self, bgp_only_world):
        world = bgp_only_world
        rng = np.random.default_rng(world.config.seed)
        return list(
            simulate_bgp(
                world.topo, world.policies, world.collectors,
                world.ixp.route_server, rng,
            )
        )

    def test_windows_grow_monotonically(self, observations):
        study = temporal_study(observations, n_windows=3, sample_asns=50)
        adjacency_counts = [s.num_adjacencies for s in study.snapshots]
        assert adjacency_counts == sorted(adjacency_counts)
        prefix_counts = [s.num_prefixes for s in study.snapshots]
        assert prefix_counts == sorted(prefix_counts)

    def test_valid_space_grows(self, observations):
        study = temporal_study(observations, n_windows=3, sample_asns=50)
        means = [s.mean_valid_slash24s for s in study.snapshots]
        assert means[-1] >= means[0]

    def test_growth_and_convergence_metrics(self, observations):
        study = temporal_study(observations, n_windows=4, sample_asns=50)
        assert study.adjacency_growth() >= 1.0
        assert isinstance(study.converged(), bool)
        assert "Temporal growth" in study.render()

    def test_empty_observations_rejected(self):
        with pytest.raises(ValueError):
            temporal_study([])
