"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_preset_choices(self):
        args = build_parser().parse_args(["table1", "--preset", "tiny"])
        assert args.preset == "tiny"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--preset", "huge"])

    def test_acl_defaults(self):
        args = build_parser().parse_args(["acl"])
        assert args.approach == "full+orgs"
        assert args.peer is None


class TestCommands:
    def test_survey(self, capsys):
        assert main(["survey", "--responses", "40", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "40 responses" in out

    def test_table1(self, capsys):
        assert main(["table1", "--preset", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "bogon" in out and "invalid full+orgs" in out

    def test_cones(self, capsys):
        assert main(["cones", "--preset", "tiny", "--sample", "40"]) == 0
        out = capsys.readouterr().out
        assert "Fig.2" in out

    def test_acl(self, capsys):
        assert main(["acl", "--preset", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "# ingress whitelist" in out
        # At least one prefix line like a.b.c.d/len.
        assert any("/" in line for line in out.splitlines()[1:])

    def test_acl_unknown_peer(self, capsys):
        assert main(["acl", "--preset", "tiny", "--peer", "999999"]) == 2
