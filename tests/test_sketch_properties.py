"""Property-based guarantees of the sketch triage layer.

The sketches earn their place in the pipeline through three provable
properties the exact engine can rely on: count-min estimates never
undercount and merge bit-exactly in any order; space-saving tracks a
superset of the true heavy hitters at the paper's zipf-like source
skew; and the triage digest algebra is grouping-invariant, mirroring
``StreamClassificationResult``. These tests pin each guarantee with
hypothesis-generated adversarial inputs, plus the class-code mirror
that keeps ``repro.sketch`` import-cycle-free with ``repro.core``.
"""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.messages import RouteObservation
from repro.bgp.rib import GlobalRIB
from repro.cones.naive import NaiveValidSpace
from repro.core import TrafficClass
from repro.net.addr import addr_to_int
from repro.net.prefix import Prefix
from repro.net.prefixset import PrefixSet
from repro.sketch import (
    CountMinSketch,
    SketchParams,
    SketchTriageResult,
    SpaceSaving,
    build_triage_state,
)
from repro.sketch import triage as triage_mod
from repro.sketch.triage import FlowTableLike

#: Key universe for the hypothesis strategies — wide enough to force
#: collisions in a width-64 sketch, small enough to enumerate truth.
keys_strategy = st.lists(
    st.integers(min_value=0, max_value=2**48), min_size=0, max_size=300
)


def _filled(keys: list[int], **geometry) -> CountMinSketch:
    sketch = CountMinSketch(**geometry)
    arr = np.asarray(keys, dtype=np.uint64)
    unique, counts = np.unique(arr, return_counts=True)
    sketch.update_many(unique, counts.astype(np.int64))
    return sketch


class TestCountMin:
    @given(keys=keys_strategy)
    @settings(max_examples=60, deadline=None)
    def test_never_underestimates(self, keys):
        sketch = _filled(keys, depth=3, width=64, seed=11)
        truth = Counter(keys)
        assert sketch.total == len(keys)
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    @given(a=keys_strategy, b=keys_strategy, c=keys_strategy)
    @settings(max_examples=40, deadline=None)
    def test_merge_associative_and_commutative_to_the_bit(self, a, b, c):
        geometry = dict(depth=4, width=32, seed=7)
        sk_a = _filled(a, **geometry)
        sk_b = _filled(b, **geometry)
        sk_c = _filled(c, **geometry)

        ab = sk_a.copy()
        ab.merge(sk_b)
        ba = sk_b.copy()
        ba.merge(sk_a)
        assert ab == ba  # commutative, bit for bit

        left = ab.copy()
        left.merge(sk_c)  # (a + b) + c
        bc = sk_b.copy()
        bc.merge(sk_c)
        right = sk_a.copy()
        right.merge(bc)  # a + (b + c)
        assert left == right  # associative, bit for bit

        # And the merged sketch equals folding the concatenated stream.
        whole = _filled(a + b + c, **geometry)
        assert left == whole

    @given(keys=keys_strategy)
    @settings(max_examples=40, deadline=None)
    def test_cross_process_determinism_contract(self, keys):
        # Two sketches built independently with equal geometry index
        # identically — the property the per-worker merge rests on.
        one = _filled(keys, depth=3, width=64, seed=11)
        two = _filled(keys, depth=3, width=64, seed=11)
        assert one == two

    def test_overestimate_tracks_width_bound_at_paper_skew(self):
        # Seeded zipf stream (the paper's source-prefix skew shape):
        # the mean overestimate must stay within a few multiples of
        # the analytic per-row expectation total/width.
        rng = np.random.default_rng(2017)
        keys = rng.zipf(1.3, 20_000).astype(np.uint64)
        sketch = _filled(keys.tolist(), depth=4, width=1024, seed=3)
        truth = Counter(keys.tolist())
        unique = np.fromiter(truth, dtype=np.uint64)
        estimates = sketch.estimate_many(unique)
        exact = np.array([truth[int(k)] for k in unique], dtype=np.int64)
        over = estimates - exact
        assert (over >= 0).all()
        assert over.mean() <= 4 * sketch.error_bound()

    def test_merge_rejects_mismatched_geometry(self):
        with pytest.raises(ValueError):
            CountMinSketch(depth=4, width=64).merge(
                CountMinSketch(depth=4, width=128)
            )


class TestSpaceSaving:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_heavy_hitter_superset_at_paper_skew(self, seed):
        # Any key whose true frequency exceeds n/k of the n offered
        # items is guaranteed tracked (Metwally); estimates bound the
        # truth from above, counts from both sides via the error term.
        rng = np.random.default_rng(seed)
        keys = rng.zipf(1.3, 1500).astype(np.int64)
        summary = SpaceSaving(k=32)
        for key in keys.tolist():
            summary.offer(key)
        truth = Counter(keys.tolist())
        threshold = summary.offered / summary.k
        tracked = set(summary.keys())
        for key, count in truth.items():
            if count > threshold:
                assert key in tracked, (key, count, threshold)
            assert summary.estimate(key) >= count
        for key, count, error in summary.items():
            assert count - error <= truth[key] <= count

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_offer_many_preserves_guarantees(self, seed):
        rng = np.random.default_rng(seed)
        keys = rng.zipf(1.3, 1500).astype(np.int64)
        unique, counts = np.unique(keys, return_counts=True)
        summary = SpaceSaving(k=32)
        summary.offer_many(unique, counts)
        truth = Counter(keys.tolist())
        threshold = summary.offered / summary.k
        tracked = set(summary.keys())
        assert summary.offered == keys.size
        for key, count in truth.items():
            if count > threshold:
                assert key in tracked
            assert summary.estimate(key) >= count

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_merge_commutative_and_superset_over_union(self, seed):
        # Per-worker summaries merged in either order are identical,
        # and the n/k superset guarantee holds over the *combined*
        # stream (the mergeable-summaries property).
        rng = np.random.default_rng(seed)
        keys = rng.zipf(1.3, 2000).astype(np.int64)
        half = keys.size // 2
        one, two = SpaceSaving(k=32), SpaceSaving(k=32)
        for key in keys[:half].tolist():
            one.offer(key)
        for key in keys[half:].tolist():
            two.offer(key)

        forward = one.copy()
        forward.merge(two)
        backward = two.copy()
        backward.merge(one)
        assert forward.items() == backward.items()
        assert forward.offered == backward.offered == keys.size

        truth = Counter(keys.tolist())
        threshold = forward.offered / forward.k
        tracked = set(forward.keys())
        for key, count in truth.items():
            if count > threshold:
                assert key in tracked, (key, count, threshold)
            assert forward.estimate(key) >= count

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_three_way_merge_guarantee_order_invariant(self, seed):
        # Truncation makes three-way merges order-sensitive in their
        # exact contents, but the superset + overestimate guarantees
        # must survive *every* association order.
        rng = np.random.default_rng(seed)
        keys = rng.zipf(1.3, 2100).astype(np.int64)
        thirds = np.array_split(keys, 3)
        truth = Counter(keys.tolist())

        def merged(order):
            parts = []
            for part in order:
                summary = SpaceSaving(k=32)
                for key in part.tolist():
                    summary.offer(key)
                parts.append(summary)
            base = parts[0]
            base.merge(parts[1])
            base.merge(parts[2])
            return base

        for order in ((0, 1, 2), (2, 0, 1), (1, 2, 0)):
            summary = merged([thirds[i] for i in order])
            assert summary.offered == keys.size
            threshold = summary.offered / summary.k
            tracked = set(summary.keys())
            for key, count in truth.items():
                if count > threshold:
                    assert key in tracked, (order, key, count)
                assert summary.estimate(key) >= count

    def test_merge_rejects_mismatched_capacity(self):
        with pytest.raises(ValueError):
            SpaceSaving(k=8).merge(SpaceSaving(k=16))


class TestClassCodeMirror:
    def test_sketch_constants_mirror_traffic_class(self):
        # repro.sketch duplicates the class codes to stay import-cycle
        # free with repro.core; this is the assertion the module
        # docstring promises keeps the mirror honest.
        assert triage_mod.CLASS_VALID == int(TrafficClass.VALID)
        assert triage_mod.CLASS_BOGON == int(TrafficClass.BOGON)
        assert triage_mod.CLASS_UNROUTED == int(TrafficClass.UNROUTED)
        assert triage_mod.CLASS_INVALID == int(TrafficClass.INVALID)
        assert triage_mod.N_CLASSES == len(TrafficClass)
        assert triage_mod._CLASS_NAMES == tuple(
            cls.name.lower() for cls in TrafficClass
        )


def _toy_state():
    rib = GlobalRIB()
    rib.add(
        RouteObservation(
            Prefix.parse("60.0.0.0/16"), (20, 1, 10, 100), "rrc00"
        )
    )
    rib.add(
        RouteObservation(
            Prefix.parse("20.0.0.0/16"), (10, 1, 20, 200), "rrc00"
        )
    )
    bogons = PrefixSet([Prefix.parse("10.0.0.0/8")])
    state = build_triage_state(
        NaiveValidSpace(rib),
        bogons,
        member_asns=[10, 100, 200],
        params=SketchParams(width=512, top_k=16),
    )
    return rib, state


class _Chunk(FlowTableLike):
    """Minimal concrete :class:`FlowTableLike` for digest tests."""

    def __init__(self, src: np.ndarray, member: np.ndarray) -> None:
        self.src = src
        self.member = member


class TestDigestAlgebra:
    #: Source addresses spanning all four classes under the toy RIB.
    SOURCES = (
        "60.0.5.5",  # routed, valid for member 100
        "20.0.0.9",  # routed, valid for member 200
        "9.9.9.9",  # unrouted
        "10.1.2.3",  # bogon
        "20.0.1.1",  # routed, invalid for member 100
    )

    def _random_chunk(self, rng, n):
        pick = rng.integers(0, len(self.SOURCES), n)
        members = np.array([100, 200, 10])[rng.integers(0, 3, n)]
        src = np.array(
            [addr_to_int(self.SOURCES[i]) for i in pick], dtype=np.uint64
        )
        return _Chunk(src, members.astype(np.int64))

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        split=st.integers(min_value=0, max_value=400),
    )
    @settings(max_examples=20, deadline=None)
    def test_absorb_then_merge_grouping_invariant(self, seed, split):
        # Chunk digests folded worker-by-worker then merged must equal
        # one result absorbing every digest — the algebra that makes
        # the parallel triage path deterministic.
        rib, state = _toy_state()
        rng = np.random.default_rng(seed)
        chunks = [self._random_chunk(rng, 80) for _ in range(6)]
        digests = [state.digest(chunk, rib) for chunk in chunks]
        split = split % (len(digests) + 1)

        serial = SketchTriageResult(state.params, state.approach_name)
        for digest in digests:
            serial.absorb(digest)

        left = SketchTriageResult(state.params, state.approach_name)
        right = SketchTriageResult(state.params, state.approach_name)
        for digest in digests[:split]:
            left.absorb(digest)
        for digest in digests[split:]:
            right.absorb(digest)
        left.merge(right)

        assert left.n_flows == serial.n_flows
        assert left.n_chunks == serial.n_chunks
        assert (left.class_totals == serial.class_totals).all()
        assert left.member_class == serial.member_class  # bit-equal
        assert (
            left.spoofed_sources.items() == serial.spoofed_sources.items()
        )

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_digest_class_totals_consistent(self, seed):
        rib, state = _toy_state()
        rng = np.random.default_rng(seed)
        chunk = self._random_chunk(rng, 120)
        digest = state.digest(chunk, rib)
        assert digest.n_flows == 120
        assert digest.class_totals.sum() == 120
        assert digest.member_class_counts.sum() == 120
        # Spoofed-source /24 counts cover exactly the invalid rows.
        assert (
            digest.spoofed_counts.sum()
            == digest.class_totals[triage_mod.CLASS_INVALID]
        )

    def test_merge_rejects_mismatched_params(self):
        result = SketchTriageResult(SketchParams(), "naive")
        other = SketchTriageResult(SketchParams(width=8192), "naive")
        with pytest.raises(ValueError):
            result.merge(other)
