"""Tests for small shared utilities and BGP message records."""

import numpy as np
import pytest

from repro.bgp.messages import RouteObservation
from repro.net.prefix import Prefix
from repro.util.indexing import AsnIndexer
from repro.util.timeconst import DAY, HOUR, MEASUREMENT_SECONDS, WEEK


class TestAsnIndexer:
    def test_sorted_dense_indices(self):
        indexer = AsnIndexer([30, 10, 20, 10])
        assert len(indexer) == 3
        assert indexer.asns() == [10, 20, 30]
        assert indexer.index(10) == 0
        assert indexer.asn(2) == 30

    def test_roundtrip(self):
        indexer = AsnIndexer(range(100, 200, 7))
        for asn in indexer.asns():
            assert indexer.asn(indexer.index(asn)) == asn

    def test_unknown_asn(self):
        indexer = AsnIndexer([1, 2])
        assert indexer.index_or_none(3) is None
        with pytest.raises(KeyError):
            indexer.index(3)

    def test_contains(self):
        indexer = AsnIndexer([5])
        assert 5 in indexer
        assert 6 not in indexer

    def test_indices_of_vector(self):
        indexer = AsnIndexer([10, 20])
        out = indexer.indices_of([20, 99, 10])
        assert out.tolist() == [1, -1, 0]


class TestTimeConstants:
    def test_relations(self):
        assert DAY == 24 * HOUR
        assert WEEK == 7 * DAY
        assert MEASUREMENT_SECONDS == 4 * WEEK


class TestRouteObservation:
    def test_origin_and_peer(self):
        obs = RouteObservation(Prefix.parse("60.0.0.0/16"), (1, 2, 3), "x")
        assert obs.origin == 3
        assert obs.monitor_peer == 1

    def test_adjacencies_directed(self):
        obs = RouteObservation(Prefix.parse("60.0.0.0/16"), (1, 2, 3), "x")
        assert obs.adjacencies() == [(1, 2), (2, 3)]

    def test_adjacencies_collapse_prepending(self):
        obs = RouteObservation(
            Prefix.parse("60.0.0.0/16"), (1, 2, 2, 2, 3, 3), "x"
        )
        assert obs.adjacencies() == [(1, 2), (2, 3)]

    def test_single_hop_no_adjacency(self):
        obs = RouteObservation(Prefix.parse("60.0.0.0/16"), (7,), "x")
        assert obs.adjacencies() == []
        assert obs.origin == obs.monitor_peer == 7

    def test_frozen(self):
        obs = RouteObservation(Prefix.parse("60.0.0.0/16"), (1,), "x")
        with pytest.raises(AttributeError):
            obs.source = "y"  # type: ignore[misc]
