"""Tests for collectors, the route server, and the BGP simulation."""

import numpy as np
import pytest

from repro.bgp.collector import CollectorConfig, CollectorSystem
from repro.bgp.rib import GlobalRIB
from repro.bgp.routeserver import RouteServer
from repro.bgp.simulate import simulate_bgp
from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.policies import build_policies


@pytest.fixture(scope="module")
def sim_world():
    topo = generate_topology(TopologyConfig(n_ases=200, seed=31))
    rng = np.random.default_rng(8)
    policies = build_policies(topo, rng)
    collectors = CollectorSystem(
        topo, CollectorConfig(n_ris=4, n_routeviews=4, mean_peers=3), rng
    )
    rs = RouteServer(sorted(topo.ases)[:60])
    observations = list(simulate_bgp(topo, policies, collectors, rs, rng))
    return topo, policies, collectors, rs, observations


class TestCollectorSystem:
    def test_collector_count_and_names(self, sim_world):
        _t, _p, collectors, _rs, _o = sim_world
        assert len(collectors.collectors) == 8
        names = [c.name for c in collectors.collectors]
        assert "rrc00" in names
        assert "route-views0" in names

    def test_peers_are_real_ases(self, sim_world):
        topo, _p, collectors, _rs, _o = sim_world
        for asn in collectors.all_peer_asns:
            assert asn in topo

    def test_collectors_peering_with(self, sim_world):
        _t, _p, collectors, _rs, _o = sim_world
        some_peer = next(iter(collectors.all_peer_asns))
        hits = collectors.collectors_peering_with(some_peer)
        assert hits
        assert all(some_peer in c.peer_asns for c in hits)


class TestRouteServer:
    def test_participation_cutoff(self):
        rs = RouteServer([1, 2, 3, 4], participation=0.5)
        assert rs.member_asns == (1, 2)
        assert len(rs) == 2
        assert 1 in rs and 3 not in rs

    def test_full_participation(self):
        rs = RouteServer([3, 1, 2])
        assert rs.member_asns == (1, 2, 3)


class TestSimulation:
    def test_observation_paths_end_at_origin(self, sim_world):
        topo, policies, _c, _rs, observations = sim_world
        for observation in observations[:500]:
            origin = observation.origin
            assert observation.prefix in set(
                policies[origin].all_prefixes()
            )

    def test_monitor_peer_is_collector_peer_or_member(self, sim_world):
        _t, _p, collectors, rs, observations = sim_world
        peers = collectors.all_peer_asns
        members = set(rs.member_asns)
        for observation in observations[:500]:
            if observation.source == RouteServer.SOURCE_NAME:
                assert observation.monitor_peer in members
            else:
                assert observation.monitor_peer in peers

    def test_restricted_groups_only_via_first_hop(self, sim_world):
        topo, policies, _c, _rs, observations = sim_world
        restricted = {}
        for asn, policy in policies.items():
            for group in policy.groups:
                if group.first_hops is not None:
                    for prefix in group.prefixes:
                        restricted[prefix] = (asn, set(group.first_hops))
        checked = 0
        for observation in observations:
            entry = restricted.get(observation.prefix)
            if entry is None:
                continue
            origin, first_hops = entry
            if observation.path[-1] != origin or len(observation.path) < 2:
                continue
            assert observation.path[-2] in first_hops
            checked += 1
        assert checked > 0

    def test_rs_observations_are_customer_routes(self, sim_world):
        topo, _p, _c, rs, observations = sim_world
        for observation in observations[:2000]:
            if observation.source != RouteServer.SOURCE_NAME:
                continue
            member = observation.monitor_peer
            origin = observation.origin
            if member != origin:
                assert origin in topo.customer_cone(member)

    def test_churn_produces_updates(self, sim_world):
        _t, _p, _c, _rs, observations = sim_world
        updates = [o for o in observations if o.from_update]
        dumps = [o for o in observations if not o.from_update]
        assert updates and dumps
        assert all(o.timestamp > 0 for o in updates)

    def test_failover_exposes_backup_links(self):
        topo = generate_topology(TopologyConfig(n_ases=200, seed=31))
        rng_a = np.random.default_rng(8)
        rng_b = np.random.default_rng(8)
        policies = build_policies(topo, rng_a)
        policies_b = build_policies(topo, rng_b)
        collectors_a = CollectorSystem(
            topo, CollectorConfig(n_ris=4, n_routeviews=4, mean_peers=3), rng_a
        )
        collectors_b = CollectorSystem(
            topo, CollectorConfig(n_ris=4, n_routeviews=4, mean_peers=3), rng_b
        )
        rib_with = GlobalRIB.from_observations(
            simulate_bgp(topo, policies, collectors_a, None, rng_a,
                         failover_prob=0.9)
        )
        rib_without = GlobalRIB.from_observations(
            simulate_bgp(topo, policies_b, collectors_b, None, rng_b,
                         failover_prob=0.0)
        )
        assert len(rib_with.adjacencies()) >= len(rib_without.adjacencies())
        assert rib_with.num_paths > rib_without.num_paths


class TestWithdrawals:
    def test_withdrawals_present_and_ignored(self):
        """Withdrawal messages appear in the stream but never shrink
        the window RIB (the paper's union semantics)."""
        topo = generate_topology(TopologyConfig(n_ases=200, seed=31))
        rng = np.random.default_rng(8)
        policies = build_policies(topo, rng)
        collectors = CollectorSystem(
            topo, CollectorConfig(n_ris=4, n_routeviews=4, mean_peers=3), rng
        )
        observations = list(
            simulate_bgp(topo, policies, collectors, None, rng,
                         failover_prob=0.9)
        )
        withdrawals = [o for o in observations if o.withdrawal]
        assert withdrawals
        assert all(o.from_update for o in withdrawals)
        rib = GlobalRIB.from_observations(observations)
        assert rib.num_withdrawals == len(withdrawals)
        # Union semantics: adding the withdrawals changed nothing.
        rib_without = GlobalRIB.from_observations(
            o for o in observations if not o.withdrawal
        )
        assert rib.num_prefixes == rib_without.num_prefixes
        assert rib.adjacencies() == rib_without.adjacencies()

    def test_withdrawal_precedes_failover_announcement(self):
        topo = generate_topology(TopologyConfig(n_ases=200, seed=31))
        rng = np.random.default_rng(8)
        policies = build_policies(topo, rng)
        collectors = CollectorSystem(
            topo, CollectorConfig(n_ris=4, n_routeviews=4, mean_peers=3), rng
        )
        observations = list(
            simulate_bgp(topo, policies, collectors, None, rng,
                         failover_prob=0.9)
        )
        by_origin = {}
        for o in observations:
            if o.withdrawal:
                by_origin.setdefault(o.origin, []).append(o.timestamp)
        assert by_origin
        announcements = {}
        for o in observations:
            if o.from_update and not o.withdrawal:
                announcements.setdefault(o.origin, []).append(o.timestamp)
        for origin, w_times in by_origin.items():
            later = [t for t in announcements.get(origin, []) if t > max(w_times)]
            assert later, f"no announcement after withdrawal for AS{origin}"
