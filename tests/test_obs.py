"""Tests for the observability layer (repro.obs) and its wiring.

Covers the tracer (nesting, capture, disabled fast path), the metrics
registry (counters/gauges/histograms, JSONL export), the run manifest
(round trip, digests, rendering), the span⇄PipelineStats agreement the
acceptance criterion demands — single-shot, streamed serial, streamed
parallel under fork *and* spawn — the ``PipelineStats.merge``
accumulation semantics, and the CLI flags (``--trace``,
``--metrics-out``, ``--manifest-out``, ``repro trace show``).
"""

from __future__ import annotations

import json
import math

import pytest

from repro.cli import main
from repro.core.classifier import MP_START_METHOD_ENV
from repro.core.stats import PipelineStats, StageTiming
from repro.experiments import WorldConfig, build_world
from repro.io import save_flows_csv, save_flows_npz
from repro.obs import (
    MetricsRegistry,
    RunManifest,
    SpanRecord,
    Tracer,
    current_metrics,
    current_tracer,
    enable_tracing,
    file_digest,
    manifest_path_for,
    span_totals,
    trace,
    tracing_enabled,
)


@pytest.fixture()
def clean_obs():
    """Reset ambient tracer/metrics state around a test."""
    current_tracer().drain()
    current_metrics().clear()
    was_enabled = tracing_enabled()
    yield
    enable_tracing(was_enabled)
    current_tracer().drain()
    current_metrics().clear()


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig.tiny())


# -- tracer ----------------------------------------------------------------


class TestTracer:
    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("outer", rows=10):
            tracer.record("inner", 0.5, rows=5)
        assert tracer.records == []

    def test_nesting_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner", rows=3):
                pass
        inner, outer = tracer.records
        assert inner.name == "inner" and inner.parent == "outer"
        assert outer.name == "outer" and outer.parent is None
        assert inner.rows == 3

    def test_record_uses_current_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            tracer.record("leaf", 0.25, rows=7)
        leaf = tracer.records[0]
        assert leaf.parent == "outer"
        assert leaf.seconds == 0.25

    def test_capture_removes_and_returns(self):
        tracer = Tracer(enabled=True)
        with tracer.span("before"):
            pass
        with tracer.capture() as captured:
            with tracer.span("inside"):
                pass
        assert [r.name for r in captured] == ["inside"]
        assert [r.name for r in tracer.records] == ["before"]

    def test_drain_clears(self):
        tracer = Tracer(enabled=True)
        tracer.record("a", 0.1)
        assert [r.name for r in tracer.drain()] == ["a"]
        assert tracer.records == []

    def test_span_totals_aggregates(self):
        records = [
            SpanRecord("x", 0.5, rows=10),
            SpanRecord("x", 0.25, rows=20),
            SpanRecord("y", 1.0, rows=0),
        ]
        totals = span_totals(records)
        assert totals["x"].calls == 2
        assert totals["x"].seconds == 0.75
        assert totals["x"].rows == 30
        assert totals["x"].rows_per_sec == 30 / 0.75
        assert totals["y"].rows_per_sec == 0.0

    def test_span_totals_accepts_dicts(self):
        record = SpanRecord("z", 0.5, rows=4, parent="p", attrs={"k": 1})
        totals = span_totals([record.to_dict()])
        assert totals["z"].seconds == 0.5 and totals["z"].rows == 4

    def test_record_roundtrip_dict(self):
        record = SpanRecord("n", 1.5, rows=2, start=10.0, parent="p",
                            attrs={"engine": "matrix"})
        assert SpanRecord.from_dict(record.to_dict()) == record

    def test_ambient_trace_helper(self, clean_obs):
        enable_tracing()
        with trace("ambient", rows=1):
            pass
        names = [r.name for r in current_tracer().drain()]
        assert names == ["ambient"]


# -- metrics ---------------------------------------------------------------


class TestMetrics:
    def test_counter(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        assert registry.counter("c").value == 5
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_gauge_tracks_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(5.0)
        gauge.set(2.0)
        assert gauge.value == 2.0 and gauge.max == 5.0

    def test_histogram_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for v in range(1, 101):
            hist.observe(float(v))
        assert hist.count == 100
        assert math.isclose(hist.mean, 50.5)
        assert abs(hist.percentile(50) - 50.5) < 1.0
        assert hist.percentile(99) > 95.0

    def test_histogram_reservoir_bounded(self):
        hist = MetricsRegistry().histogram("h")
        hist._max_samples = 64
        for v in range(10_000):
            hist.observe(float(v))
        assert hist.count == 10_000
        assert len(hist.samples) <= 64

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(TypeError):
            registry.gauge("m")

    def test_export_jsonl(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.5)
        out = tmp_path / "metrics.jsonl"
        assert registry.export_jsonl(out) == 3
        records = [json.loads(line) for line in out.read_text().splitlines()]
        by_name = {r["name"]: r for r in records}
        assert by_name["c"] == {"name": "c", "kind": "counter", "value": 3}
        assert by_name["g"]["max"] == 1.5
        assert by_name["h"]["count"] == 1


# -- manifest --------------------------------------------------------------


class TestManifest:
    def test_roundtrip_identical_dict(self, tmp_path):
        manifest = RunManifest.create(
            "test", argv=["--x"], seed=7, preset="tiny",
            config={"n": 1, "nested": {"f": 0.5}},
        )
        data_file = tmp_path / "input.bin"
        data_file.write_bytes(b"hello spoofing")
        manifest.add_input("flows", data_file)
        stats = PipelineStats(n_flows=10, n_chunks=2)
        stats.record("bogon", 0.5, 10)
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        manifest.finish(
            stats=stats,
            spans=[SpanRecord("classify.bogon", 0.5, rows=10)],
            metrics=registry,
            exit_code=0,
            complete=True,
        )
        path = manifest.write(tmp_path / "run.manifest.json")
        loaded = RunManifest.load(path)
        assert loaded.to_dict() == manifest.to_dict()

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"schema": "other/1"}')
        with pytest.raises(ValueError):
            RunManifest.load(path)

    def test_file_digest(self, tmp_path):
        f = tmp_path / "f"
        f.write_bytes(b"abc")
        record = file_digest(f)
        assert record["bytes"] == 3
        assert record["sha256"] == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_manifest_path_for(self):
        assert str(manifest_path_for("out/table1.txt")).endswith(
            "table1.manifest.json"
        )

    def test_render_mentions_key_fields(self, tmp_path):
        manifest = RunManifest.create("study", seed=1, preset="tiny")
        manifest.finish(exit_code=0, complete=True)
        text = manifest.render()
        assert "study" in text
        assert "exit=0" in text


# -- span / stats agreement (the acceptance criterion) ---------------------


def _assert_spans_match_stats(spans, stats) -> None:
    """Merged span totals must equal the PipelineStats stage table."""
    totals = span_totals(spans)
    assert stats.stages, "no stages recorded"
    for name, stage in stats.stages.items():
        total = totals[f"classify.{name}"]
        assert total.rows == stage.rows, name
        assert math.isclose(
            total.seconds, stage.seconds, rel_tol=1e-9, abs_tol=1e-9
        ), name


class TestSpanStatsAgreement:
    def test_single_shot(self, world, clean_obs):
        enable_tracing()
        result = world.classifier.classify(world.scenario.flows)
        spans = current_tracer().drain()
        _assert_spans_match_stats(spans, result.stats)
        # The enclosing classify span is present and parents the stages.
        by_name = {r.name: r for r in spans}
        assert by_name["classify.bogon"].parent == "classify"

    def test_streamed_serial(self, world, clean_obs):
        enable_tracing()
        stream = world.classifier.classify_stream(
            world.scenario.flows, chunk_rows=3000
        )
        assert stream.n_chunks > 1
        _assert_spans_match_stats(stream.spans, stream.stats)

    def test_streamed_parallel(self, world, clean_obs):
        enable_tracing()
        stream = world.classifier.classify_stream(
            world.scenario.flows, n_workers=2, chunk_rows=3000
        )
        assert stream.n_chunks > 1
        _assert_spans_match_stats(stream.spans, stream.stats)

    def test_streamed_parallel_spawn(self, world, clean_obs, monkeypatch):
        monkeypatch.setenv(MP_START_METHOD_ENV, "spawn")
        enable_tracing()
        stream = world.classifier.classify_stream(
            world.scenario.flows, n_workers=2, chunk_rows=6000
        )
        assert stream.n_chunks > 1
        _assert_spans_match_stats(stream.spans, stream.stats)

    def test_disabled_by_default_no_spans(self, world, clean_obs):
        assert not tracing_enabled()
        stream = world.classifier.classify_stream(
            world.scenario.flows, chunk_rows=5000
        )
        assert stream.spans == []
        assert current_tracer().records == []


# -- PipelineStats merge semantics (satellite) -----------------------------


class TestStatsMerge:
    def test_rows_per_sec_accumulates_not_averages(self):
        a = PipelineStats(n_flows=100, n_chunks=1)
        a.record("lpm", 1.0, 100)
        b = PipelineStats(n_flows=300, n_chunks=1)
        b.record("lpm", 1.0, 300)
        a.merge(b)
        stage = a.stages["lpm"]
        # 400 rows over 2 seconds — the accumulated ratio, not the
        # mean of the per-chunk ratios (which would be 200).
        assert stage.rows == 400 and stage.seconds == 2.0
        assert stage.rows_per_sec == 200.0
        assert a.n_flows == 400 and a.n_chunks == 2

    def test_merge_preserves_invalid_counts_and_drops(self):
        a = PipelineStats()
        a.count_invalid("full", 5)
        b = PipelineStats(rows_dropped=7)
        b.count_invalid("full", 3)
        b.count_invalid("cc", 1)
        a.merge(b)
        assert a.invalid_counts == {"full": 8, "cc": 1}
        assert a.rows_dropped == 7

    def test_zero_second_stage(self):
        timing = StageTiming("x")
        assert timing.rows_per_sec == 0.0
        timing.add(0.0, 10)
        assert timing.rows_per_sec == float("inf")

    def test_streamed_equals_single_shot_accumulation(self, world, clean_obs):
        """Chunked stats totals must equal a single-shot run's shape."""
        flows = world.scenario.flows
        single = world.classifier.classify(flows).stats
        stream = world.classifier.classify_stream(flows, chunk_rows=4000)
        assert stream.stats.n_flows == single.n_flows
        assert set(stream.stats.stages) == set(single.stages)
        for name, stage in stream.stats.stages.items():
            assert stage.rows == single.stages[name].rows, name


# -- CLI wiring ------------------------------------------------------------


class TestCliObservability:
    @pytest.fixture()
    def flows_csv(self, world, tmp_path):
        path = tmp_path / "flows.csv"
        save_flows_csv(world.scenario.flows, path)
        return path

    def test_classify_trace_writes_manifest_and_metrics(
        self, flows_csv, tmp_path, capsys, clean_obs
    ):
        metrics_out = tmp_path / "metrics.jsonl"
        code = main(
            [
                "classify",
                str(flows_csv),
                "--preset",
                "tiny",
                "--trace",
                "--metrics-out",
                str(metrics_out),
            ]
        )
        assert code == 0
        manifest_path = manifest_path_for(flows_csv)
        assert manifest_path.exists()
        assert metrics_out.exists()
        manifest = RunManifest.load(manifest_path)
        data = manifest.to_dict()
        assert data["command"] == "classify"
        assert data["outcome"] == {"exit_code": 0, "complete": True}
        assert data["inputs"]["flows"]["sha256"]
        # Acceptance: merged span totals agree with the stage table.
        totals = span_totals(data["spans"])
        for name, stage in data["stages"].items():
            assert totals[f"classify.{name}"].rows == stage["rows"], name
            assert math.isclose(
                totals[f"classify.{name}"].seconds,
                stage["seconds"],
                rel_tol=1e-9,
                abs_tol=1e-9,
            ), name
        # Metrics JSONL carries per-class row counters and peak RSS.
        names = {
            json.loads(line)["name"]
            for line in metrics_out.read_text().splitlines()
        }
        assert "stream.rows" in names
        assert "peak_rss_bytes" in names
        assert any(name.startswith("rows.") for name in names)

    def test_classify_manifest_out_explicit(
        self, flows_csv, tmp_path, capsys, clean_obs
    ):
        out = tmp_path / "custom.manifest.json"
        code = main(
            [
                "classify",
                str(flows_csv),
                "--preset",
                "tiny",
                "--manifest-out",
                str(out),
            ]
        )
        assert code == 0
        data = RunManifest.load(out).to_dict()
        assert data["seed"] == 42 and data["preset"] == "tiny"
        # Without --trace there are no spans, but stages still land.
        assert data["spans"] == []
        assert data["stages"]

    def test_trace_show_renders(self, flows_csv, tmp_path, capsys, clean_obs):
        assert (
            main(
                [
                    "classify",
                    str(flows_csv),
                    "--preset",
                    "tiny",
                    "--trace",
                ]
            )
            == 0
        )
        capsys.readouterr()
        manifest_path = manifest_path_for(flows_csv)
        assert main(["trace", "show", str(manifest_path)]) == 0
        out = capsys.readouterr().out
        assert "run manifest: classify" in out
        assert "classify.lpm" in out
        assert "peak_rss_bytes" in out

    def test_trace_show_missing_file(self, tmp_path, capsys, clean_obs):
        assert main(["trace", "show", str(tmp_path / "nope.json")]) == 2

    def test_npz_input_digested(self, world, tmp_path, capsys, clean_obs):
        path = tmp_path / "flows.npz"
        save_flows_npz(world.scenario.flows, path)
        out = tmp_path / "m.json"
        code = main(
            [
                "classify",
                str(path),
                "--preset",
                "tiny",
                "--trace",
                "--manifest-out",
                str(out),
            ]
        )
        assert code == 0
        data = RunManifest.load(out).to_dict()
        assert data["inputs"]["flows"]["path"] == str(path)
        # The npz load span is on the ledger too.
        assert any(
            span["name"] == "io.load_flows_npz" for span in data["spans"]
        )

    def test_study_trace_manifest(self, tmp_path, capsys, clean_obs,
                                  monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["study", "--preset", "tiny", "--trace"])
        assert code == 0
        data = RunManifest.load(tmp_path / "repro_study.manifest.json")
        spans = {span["name"] for span in data.to_dict()["spans"]}
        # World-assembly phases are traced end to end.
        assert {"world.topology", "world.bgp", "world.cones",
                "world.traffic"} <= spans

    def test_quarantine_metric_counted(self, world, tmp_path, capsys,
                                       clean_obs):
        path = tmp_path / "dirty.csv"
        save_flows_csv(world.scenario.flows, path)
        lines = path.read_text().splitlines()
        lines[3] = "not,a,valid,row"
        path.write_text("\n".join(lines) + "\n")
        out = tmp_path / "m.json"
        code = main(
            [
                "classify",
                str(path),
                "--preset",
                "tiny",
                "--on-error",
                "quarantine",
                "--manifest-out",
                str(out),
            ]
        )
        assert code == 0
        data = RunManifest.load(out).to_dict()
        assert data["metrics"]["ingest.quarantined_rows"]["value"] == 1


# -- manifest round trip under spawn (satellite) ---------------------------


def test_manifest_roundtrip_under_spawn(world, tmp_path, clean_obs,
                                        monkeypatch):
    """write → load → identical dict, with spans from spawn workers."""
    monkeypatch.setenv(MP_START_METHOD_ENV, "spawn")
    enable_tracing()
    stream = world.classifier.classify_stream(
        world.scenario.flows, n_workers=2, chunk_rows=6000
    )
    manifest = RunManifest.create("spawn-roundtrip", seed=world.config.seed)
    manifest.finish(
        stats=stream.stats,
        spans=stream.spans,
        metrics=current_metrics(),
        complete=stream.complete,
    )
    path = manifest.write(tmp_path / "spawn.manifest.json")
    loaded = RunManifest.load(path)
    assert loaded.to_dict() == manifest.to_dict()
    _assert_spans_match_stats(loaded.to_dict()["spans"], stream.stats)


def test_worker_tracer_stays_clean(world, clean_obs):
    """Chunk spans ship in summaries, not the supervisor's tracer."""
    enable_tracing()
    world.classifier.classify_stream(
        world.scenario.flows, n_workers=2, chunk_rows=5000
    )
    names = [r.name for r in current_tracer().drain()]
    # Only the supervisor-side stream span remains ambient.
    assert names == ["classify.stream"]
