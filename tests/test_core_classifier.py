"""Tests for the classification pipeline (Figure 3)."""

import numpy as np
import pytest

from repro.bgp.messages import RouteObservation
from repro.bgp.rib import GlobalRIB
from repro.cones.full_cone import FullConeValidSpace
from repro.cones.naive import NaiveValidSpace
from repro.core import SpoofingClassifier, TrafficClass, evaluate_against_truth
from repro.ixp.flows import PROTO_TCP, FlowTable, TruthLabel
from repro.net.addr import addr_to_int
from repro.net.prefix import Prefix


def obs(prefix, *path):
    return RouteObservation(Prefix.parse(prefix), tuple(path), "rrc00")


@pytest.fixture()
def setup():
    """RIB: AS100 originates 10.0/16 via AS10; AS200 originates
    20.0/16 via AS20; monitors 10 and 20 observe across a peering."""
    rib = GlobalRIB()
    rib.add(obs("60.0.0.0/16", 20, 1, 10, 100))
    rib.add(obs("20.0.0.0/16", 10, 1, 20, 200))
    full = FullConeValidSpace(rib)
    classifier = SpoofingClassifier(rib, {"full": full})
    return rib, classifier


def flow_table(rows):
    """rows: list of (src_text, member, truth)."""
    n = len(rows)
    return FlowTable(
        src=np.array([addr_to_int(r[0]) for r in rows], dtype=np.uint64),
        dst=np.full(n, addr_to_int("20.0.0.1"), dtype=np.uint64),
        proto=np.full(n, PROTO_TCP),
        src_port=np.full(n, 1000),
        dst_port=np.full(n, 80),
        packets=np.full(n, 1),
        bytes=np.full(n, 60),
        member=np.array([r[1] for r in rows], dtype=np.int64),
        dst_member=np.full(n, 20, dtype=np.int64),
        time=np.zeros(n, dtype=np.int64),
        truth=np.array([int(r[2]) for r in rows], dtype=np.uint8),
    )


class TestSequentialClasses:
    def test_bogon_first(self, setup):
        _rib, classifier = setup
        result = classifier.classify(
            flow_table([("10.1.2.3", 10, TruthLabel.STRAY_NAT)])
        )
        assert result.label_vector("full")[0] == int(TrafficClass.BOGON)

    def test_unrouted_second(self, setup):
        _rib, classifier = setup
        result = classifier.classify(
            flow_table([("9.9.9.9", 10, TruthLabel.SPOOF_FLOOD)])
        )
        assert result.label_vector("full")[0] == int(TrafficClass.UNROUTED)

    def test_invalid_third(self, setup):
        _rib, classifier = setup
        # AS20 forwarding AS100's space: not in AS20's full cone.
        result = classifier.classify(
            flow_table([("60.0.5.5", 200, TruthLabel.SPOOF_FLOOD)])
        )
        assert result.label_vector("full")[0] == int(TrafficClass.INVALID)

    def test_valid_last(self, setup):
        _rib, classifier = setup
        result = classifier.classify(
            flow_table([("60.0.5.5", 100, TruthLabel.LEGIT)])
        )
        assert result.label_vector("full")[0] == int(TrafficClass.VALID)

    def test_upstream_forwarding_valid(self, setup):
        _rib, classifier = setup
        result = classifier.classify(
            flow_table([("60.0.5.5", 10, TruthLabel.LEGIT)])
        )
        assert result.label_vector("full")[0] == int(TrafficClass.VALID)

    def test_bogon_beats_invalid(self, setup):
        # A bogon source for a member that could never source it must
        # still be Bogon (classes are matched strictly in order).
        _rib, classifier = setup
        result = classifier.classify(
            flow_table([("192.168.1.1", 200, TruthLabel.STRAY_NAT)])
        )
        assert result.label_vector("full")[0] == int(TrafficClass.BOGON)

    def test_classes_mutually_exclusive(self, setup):
        _rib, classifier = setup
        table = flow_table(
            [
                ("10.1.2.3", 10, TruthLabel.STRAY_NAT),
                ("9.9.9.9", 10, TruthLabel.SPOOF_FLOOD),
                ("60.0.5.5", 200, TruthLabel.SPOOF_FLOOD),
                ("60.0.5.5", 100, TruthLabel.LEGIT),
            ]
        )
        result = classifier.classify(table)
        labels = result.label_vector("full")
        assert sorted(labels.tolist()) == [0, 1, 2, 3]


class TestMultipleApproaches:
    def test_per_approach_labels(self, setup):
        rib, _classifier = setup
        classifier = SpoofingClassifier(
            rib,
            {"naive": NaiveValidSpace(rib), "full": FullConeValidSpace(rib)},
        )
        # AS1 transits both prefixes; naive and full agree there.
        result = classifier.classify(
            flow_table([("60.0.5.5", 1, TruthLabel.LEGIT)])
        )
        assert result.label_vector("naive")[0] == int(TrafficClass.VALID)
        assert result.label_vector("full")[0] == int(TrafficClass.VALID)

    def test_requires_an_approach(self, setup):
        rib, _classifier = setup
        with pytest.raises(ValueError):
            SpoofingClassifier(rib, {})

    def test_agnostic_classes_identical_across_approaches(self, setup):
        rib, _classifier = setup
        classifier = SpoofingClassifier(
            rib,
            {"naive": NaiveValidSpace(rib), "full": FullConeValidSpace(rib)},
        )
        table = flow_table(
            [
                ("10.1.2.3", 10, TruthLabel.STRAY_NAT),
                ("9.9.9.9", 10, TruthLabel.SPOOF_FLOOD),
            ]
        )
        result = classifier.classify(table)
        for traffic_class in (TrafficClass.BOGON, TrafficClass.UNROUTED):
            assert (
                result.class_mask("naive", traffic_class)
                == result.class_mask("full", traffic_class)
            ).all()


class TestResultAggregation:
    def test_contribution_counts(self, setup):
        _rib, classifier = setup
        table = flow_table(
            [
                ("10.1.2.3", 10, TruthLabel.STRAY_NAT),
                ("10.1.2.4", 10, TruthLabel.STRAY_NAT),
                ("60.0.5.5", 100, TruthLabel.LEGIT),
            ]
        )
        result = classifier.classify(table)
        cell = result.contribution("full", TrafficClass.BOGON)
        assert cell.members == 1
        assert cell.packets == 2
        assert cell.packet_share == pytest.approx(2 / 3)

    def test_member_class_shares(self, setup):
        _rib, classifier = setup
        table = flow_table(
            [
                ("10.1.2.3", 10, TruthLabel.STRAY_NAT),
                ("60.0.5.5", 10, TruthLabel.LEGIT),
            ]
        )
        result = classifier.classify(table)
        shares = result.member_class_shares("full", TrafficClass.BOGON)
        assert shares[10] == pytest.approx(0.5)

    def test_select_class(self, setup):
        _rib, classifier = setup
        table = flow_table(
            [
                ("9.9.9.9", 10, TruthLabel.SPOOF_FLOOD),
                ("60.0.5.5", 100, TruthLabel.LEGIT),
            ]
        )
        result = classifier.classify(table)
        unrouted = result.select_class("full", TrafficClass.UNROUTED)
        assert len(unrouted) == 1

    def test_relabel(self, setup):
        _rib, classifier = setup
        table = flow_table([("9.9.9.9", 10, TruthLabel.SPOOF_FLOOD)])
        result = classifier.classify(table)
        new_labels = np.array([int(TrafficClass.VALID)], dtype=np.uint8)
        relabelled = result.relabel("full", new_labels)
        assert relabelled.label_vector("full")[0] == int(TrafficClass.VALID)
        assert result.label_vector("full")[0] == int(TrafficClass.UNROUTED)


class TestEvaluation:
    def test_perfect_detection(self, setup):
        _rib, classifier = setup
        table = flow_table(
            [
                ("9.9.9.9", 10, TruthLabel.SPOOF_FLOOD),
                ("60.0.5.5", 100, TruthLabel.LEGIT),
            ]
        )
        result = classifier.classify(table)
        quality = evaluate_against_truth(result, "full")
        assert quality.recall == 1.0
        assert quality.precision == 1.0

    def test_stray_share(self, setup):
        _rib, classifier = setup
        table = flow_table(
            [
                ("10.1.2.3", 10, TruthLabel.STRAY_NAT),
                ("9.9.9.9", 10, TruthLabel.SPOOF_FLOOD),
            ]
        )
        result = classifier.classify(table)
        quality = evaluate_against_truth(result, "full")
        assert quality.stray_share == pytest.approx(0.5)
        assert quality.precision == pytest.approx(0.5)

    def test_no_spoofed_traffic(self, setup):
        _rib, classifier = setup
        table = flow_table([("60.0.5.5", 100, TruthLabel.LEGIT)])
        result = classifier.classify(table)
        quality = evaluate_against_truth(result, "full")
        assert quality.recall == 0.0
        assert quality.flagged_packets == 0
