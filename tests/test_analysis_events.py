"""Tests for attack-event extraction and the member hygiene report."""

import numpy as np
import pytest

from repro.analysis.attack_events import (
    AttackEvent,
    extract_attack_events,
    match_against_plan,
)
from repro.analysis.member_report import member_hygiene_report
from repro.datasets.ark import run_ark_campaign


@pytest.fixture(scope="module")
def events(small_world):
    return extract_attack_events(small_world.result, "full+orgs")


class TestEventExtraction:
    def test_events_found(self, events):
        assert events

    def test_event_fields_consistent(self, events):
        for event in events:
            assert event.start <= event.end
            assert event.sampled_packets > 0
            assert event.distinct_sources > 0
            assert event.member_asns
            assert event.kind in (
                "amplification", "flood", "gaming_flood",
            )

    def test_flood_signature(self, events):
        floods = [e for e in events if e.kind == "flood"]
        assert floods
        for event in floods:
            # Random spoofing: many sources relative to packets.
            assert event.distinct_sources > 0.5 * event.sampled_packets

    def test_amplification_signature(self, events):
        amps = [e for e in events if e.kind == "amplification"]
        assert amps
        for event in amps:
            assert event.traffic_class == "invalid"

    def test_matches_ground_truth_plan(self, small_world, events):
        report = match_against_plan(events, small_world.scenario.plan)
        assert report.extracted == len(events)
        if report.truth_floods:
            assert report.flood_recall() > 0.5
        if report.truth_amplifications:
            assert report.amplification_recall() > 0.5
        assert "Attack-event extraction" in report.render()

    def test_sorted_by_start(self, events):
        starts = [e.start for e in events]
        assert starts == sorted(starts)


class TestMemberHygiene:
    @pytest.fixture(scope="class")
    def cards(self, small_world, request):
        rng = np.random.default_rng(1)
        ark = run_ark_campaign(small_world.topo, rng)
        return member_hygiene_report(small_world.result, "full+orgs", ark)

    def test_card_per_member(self, small_world, cards):
        flow_members = {
            int(m) for m in np.unique(small_world.scenario.flows.member)
        }
        assert {card.asn for card in cards} == flow_members

    def test_sorted_worst_first(self, cards):
        percentiles = [card.percentile for card in cards]
        assert percentiles == sorted(percentiles, reverse=True)

    def test_postures_cover_spectrum(self, cards):
        postures = {card.posture for card in cards}
        assert "clean" in postures
        assert "unfiltered" in postures

    def test_clean_members_have_zero_shares(self, cards):
        for card in cards:
            if card.posture == "clean":
                assert card.bogon_share == 0
                assert card.unrouted_share == 0
                assert card.invalid_share == 0

    def test_render(self, cards):
        text = cards[0].render()
        assert "posture=" in text and f"AS{cards[0].asn}" in text
