"""Tests for attack emission (floods and NTP amplification)."""

import numpy as np
import pytest

from repro.datasets.bogons import bogon_prefix_set
from repro.ixp.flows import PROTO_TCP, PROTO_UDP, TruthLabel
from repro.net.prefix import Prefix
from repro.net.prefixset import PrefixSet
from repro.net.sampling import IntervalSampler
from repro.traffic.addressing import BogonSampler, build_unrouted_sampler
from repro.traffic.attacks import (
    NTP_RESPONSE_SIZE,
    NTP_TRIGGER_SIZE,
    AmplificationEvent,
    FloodEvent,
    emit_amplification,
    emit_flood,
)
from repro.util.timeconst import HOUR


@pytest.fixture()
def samplers(rng):
    routed = PrefixSet([Prefix.parse("1.0.0.0/8"), Prefix.parse("9.0.0.0/8")])
    return (
        build_unrouted_sampler(routed, rng),
        IntervalSampler(routed),
        BogonSampler(),
    )


def flood(src_mode="unrouted", kind="syn_flood", packets=500):
    return FloodEvent(
        member=42,
        victim_addr=Prefix.parse("9.1.0.0/16").first + 7,
        start=1000,
        duration=2 * HOUR,
        sampled_packets=packets,
        src_mode=src_mode,
        kind=kind,
    )


class TestFloods:
    def test_one_row_per_packet_fresh_sources(self, rng, samplers):
        unrouted, routed, bogons = samplers
        table = emit_flood(rng, flood(), unrouted, routed, bogons, 7)
        assert len(table) == 500
        assert (table.packets == 1).all()
        # Random spoofing: (almost) every packet a distinct source.
        assert np.unique(table.src).size > 480

    def test_unrouted_sources(self, rng, samplers):
        unrouted, routed, bogons = samplers
        table = emit_flood(rng, flood("unrouted"), unrouted, routed, bogons, 7)
        routed_space = PrefixSet(
            [Prefix.parse("1.0.0.0/8"), Prefix.parse("9.0.0.0/8")]
        )
        assert not routed_space.contains_many(table.src).any()
        assert not bogon_prefix_set().contains_many(table.src).any()

    def test_bogon_sources(self, rng, samplers):
        unrouted, routed, bogons = samplers
        table = emit_flood(rng, flood("bogon"), unrouted, routed, bogons, 7)
        assert bogon_prefix_set().contains_many(table.src).all()

    def test_syn_flood_shape(self, rng, samplers):
        unrouted, routed, bogons = samplers
        table = emit_flood(rng, flood(), unrouted, routed, bogons, 7)
        assert (table.proto == PROTO_TCP).all()
        sizes = table.mean_packet_sizes()
        assert (sizes <= 60).all()
        assert np.isin(table.dst_port, (80, 443, 53, 22)).all()
        assert (table.truth == int(TruthLabel.SPOOF_FLOOD)).all()

    def test_gaming_flood_shape(self, rng, samplers):
        unrouted, routed, bogons = samplers
        table = emit_flood(
            rng, flood(kind="gaming_flood"), unrouted, routed, bogons, 7
        )
        assert (table.proto == PROTO_UDP).all()
        assert (table.dst_port == 27015).all()
        assert (table.truth == int(TruthLabel.SPOOF_GAMING)).all()

    def test_times_inside_event(self, rng, samplers):
        unrouted, routed, bogons = samplers
        event = flood()
        table = emit_flood(rng, event, unrouted, routed, bogons, 7)
        assert (table.time >= event.start).all()
        assert (table.time < event.start + event.duration).all()

    def test_single_victim(self, rng, samplers):
        unrouted, routed, bogons = samplers
        event = flood()
        table = emit_flood(rng, event, unrouted, routed, bogons, 7)
        assert (table.dst == np.uint64(event.victim_addr)).all()

    def test_zero_packets(self, rng, samplers):
        unrouted, routed, bogons = samplers
        table = emit_flood(rng, flood(packets=0), unrouted, routed, bogons, 7)
        assert len(table) == 0


def amplification(strategy="concentrated", packets=2000, n_amp=40):
    rng = np.random.default_rng(5)
    amplifiers = np.unique(
        rng.integers(
            Prefix.parse("1.0.0.0/8").first,
            Prefix.parse("1.0.0.0/8").last,
            size=n_amp,
            dtype=np.uint64,
        )
    )
    return AmplificationEvent(
        member=42,
        victim_addr=Prefix.parse("9.1.0.0/16").first + 9,
        start=0,
        duration=6 * HOUR,
        sampled_packets=packets,
        amplifiers=amplifiers,
        strategy=strategy,
    )


class TestAmplification:
    def test_trigger_shape(self, rng):
        event = amplification()
        trigger, _resp = emit_amplification(rng, event, 7, {})
        assert (trigger.proto == PROTO_UDP).all()
        assert (trigger.dst_port == 123).all()
        assert (trigger.src == np.uint64(event.victim_addr)).all()
        assert trigger.packets.sum() == event.sampled_packets
        assert (trigger.truth == int(TruthLabel.SPOOF_TRIGGER)).all()

    def test_concentrated_strategy(self, rng):
        event = amplification("concentrated")
        trigger, _ = emit_amplification(rng, event, 7, {})
        per_amp = {}
        for dst, pkts in zip(trigger.dst.tolist(), trigger.packets.tolist()):
            per_amp[dst] = per_amp.get(dst, 0) + pkts
        ordered = sorted(per_amp.values(), reverse=True)
        assert sum(ordered[:5]) / sum(ordered) > 0.5

    def test_distributed_strategy(self, rng):
        event = amplification("distributed", packets=4000, n_amp=400)
        trigger, _ = emit_amplification(rng, event, 7, {})
        per_amp = {}
        for dst, pkts in zip(trigger.dst.tolist(), trigger.packets.tolist()):
            per_amp[dst] = per_amp.get(dst, 0) + pkts
        ordered = sorted(per_amp.values(), reverse=True)
        assert sum(ordered[:5]) / sum(ordered) < 0.2

    def test_no_responses_without_map(self, rng):
        _trigger, response = emit_amplification(rng, amplification(), 7, {})
        assert len(response) == 0

    def test_responses_mirror_triggers(self, rng):
        event = amplification()
        member_of = {int(a): 99 for a in event.amplifiers}
        trigger, response = emit_amplification(
            rng, event, 7, member_of, response_visibility=1.0
        )
        assert len(response) > 0
        assert (response.src_port == 123).all()
        assert (response.dst == np.uint64(event.victim_addr)).all()
        assert (response.member == 99).all()
        assert (response.truth == int(TruthLabel.AMP_RESPONSE)).all()
        # Byte amplification ≈ size ratio.
        ratio = response.bytes.sum() / trigger.bytes.sum()
        assert ratio > 0.5 * NTP_RESPONSE_SIZE / NTP_TRIGGER_SIZE

    def test_partial_visibility(self, rng):
        event = amplification(n_amp=200, packets=4000)
        member_of = {int(a): 99 for a in event.amplifiers}
        _t, full = emit_amplification(rng, event, 7, member_of, 1.0)
        _t, half = emit_amplification(rng, event, 7, member_of, 0.4)
        assert half.packets.sum() < full.packets.sum()

    def test_heavy_amplifiers_split_hourly(self, rng):
        event = amplification("concentrated", packets=5000, n_amp=10)
        trigger, _ = emit_amplification(rng, event, 7, {})
        # The top amplifier should appear in several hourly rows.
        values, counts = np.unique(trigger.dst, return_counts=True)
        assert counts.max() >= 3

    def test_empty_event(self, rng):
        event = amplification(packets=0)
        trigger, response = emit_amplification(rng, event, 7, {})
        assert len(trigger) == 0 and len(response) == 0
