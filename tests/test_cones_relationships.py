"""Tests for AS relationship inference."""

import pytest

from repro.cones.relationships import (
    InferredRelationship,
    _collapse,
    infer_relationships,
    provider_to_customer_edges,
    transit_degree,
)


class TestCollapse:
    def test_removes_prepending(self):
        assert _collapse((1, 2, 2, 2, 3)) == (1, 2, 3)

    def test_keeps_plain_paths(self):
        assert _collapse((1, 2, 3)) == (1, 2, 3)

    def test_single_hop(self):
        assert _collapse((7,)) == (7,)


class TestTransitDegree:
    def test_endpoints_do_not_count(self):
        rank = transit_degree([(1, 2, 3)])
        assert rank[2] == 2
        assert rank[1] == 0
        assert rank[3] == 0

    def test_distinct_neighbors(self):
        rank = transit_degree([(1, 2, 3), (4, 2, 3), (1, 2, 5)])
        assert rank[2] == 4  # neighbors {1, 3, 4, 5}


def _hierarchy_paths():
    """Paths over: T1a(1)-T1b(2) peer clique; 3,4 their customers;
    5..10 edge customers of 3/4. Observation points below everyone."""
    paths = []
    # Announcements from each edge AS observed at peers of other edges.
    # Structure: [observer-side ..., top, ..., origin]
    edges_of = {3: [5, 6, 7], 4: [8, 9, 10]}
    for provider, customers in edges_of.items():
        t1 = 1 if provider == 3 else 2
        other_t1 = 2 if t1 == 1 else 1
        other_prov = 4 if provider == 3 else 3
        for origin in customers:
            # Observed at a customer of the same provider.
            for observer in customers:
                if observer != origin:
                    paths.append((observer, provider, origin))
            # Observed across the T1 peering.
            for observer in edges_of[other_prov]:
                paths.append(
                    (observer, other_prov, other_t1, t1, provider, origin)
                )
    # Direct T1 prefixes.
    for origin, provider in ((1, None), (2, None)):
        pass
    return paths


class TestInference:
    def test_simple_hierarchy(self):
        rels = infer_relationships(_hierarchy_paths())
        # Edge-provider links inferred as c2p from the edge side.
        for edge, provider in ((5, 3), (6, 3), (8, 4)):
            key = (min(edge, provider), max(edge, provider))
            rel = rels[key]
            if key[0] == edge:
                assert rel is InferredRelationship.C2P
            else:
                assert rel is InferredRelationship.P2C

    def test_t1_peering_detected(self):
        rels = infer_relationships(_hierarchy_paths())
        assert rels[(1, 2)] is InferredRelationship.PEER

    def test_provider_to_customer_edges(self):
        rels = {
            (1, 2): InferredRelationship.P2C,
            (3, 4): InferredRelationship.C2P,
            (5, 6): InferredRelationship.PEER,
        }
        edges = set(provider_to_customer_edges(rels))
        assert edges == {(1, 2), (4, 3)}

    def test_empty_paths(self):
        assert infer_relationships([]) == {}

    def test_two_as_path(self):
        rels = infer_relationships([(1, 2)] * 3)
        assert (1, 2) in rels


class TestOnSyntheticWorld:
    def test_transit_accuracy(self, bgp_only_world):
        """≥90% of true transit links present in the inference are
        recovered with the right direction."""
        world = bgp_only_world
        cc = world.approaches["cc"]
        correct = 0
        total = 0
        for (a, b), inferred in cc.relationships.items():
            true = world.topo.relationship(a, b)
            if true is None:
                continue
            if true.value not in ("p2c", "c2p"):
                continue
            total += 1
            expected = (
                InferredRelationship.P2C
                if true.value == "p2c"
                else InferredRelationship.C2P
            )
            if inferred is expected:
                correct += 1
        assert total > 50
        assert correct / total >= 0.90

    def test_no_inverted_transit(self, bgp_only_world):
        """Reversed transit directions must be very rare (they poison
        customer cones)."""
        world = bgp_only_world
        cc = world.approaches["cc"]
        inverted = 0
        total = 0
        for (a, b), inferred in cc.relationships.items():
            true = world.topo.relationship(a, b)
            if true is None or true.value not in ("p2c", "c2p"):
                continue
            total += 1
            wrong = (
                InferredRelationship.C2P
                if true.value == "p2c"
                else InferredRelationship.P2C
            )
            if inferred is wrong:
                inverted += 1
        assert inverted <= max(2, 0.02 * total)
