"""Tests for ground-truth source pools and egress shares."""

import pytest

from repro.net.prefix import Prefix
from repro.traffic.forwarding import (
    SourceKind,
    build_source_pools,
    customer_egress_shares,
)


@pytest.fixture()
def micro_with_prefixes(micro_topology):
    for asn, node in micro_topology.ases.items():
        node.prefixes.append(Prefix(asn << 24, 16))
    return micro_topology


class TestEgressShares:
    def test_single_homed(self, micro_with_prefixes):
        shares = customer_egress_shares(micro_with_prefixes, 5, None, False)
        assert shares == {3: 1.0}

    def test_symmetric_multihomed(self, micro_with_prefixes):
        shares = customer_egress_shares(micro_with_prefixes, 6, 3, False)
        assert shares[3] == pytest.approx(0.85)
        assert shares[4] == pytest.approx(0.15)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_asymmetric_inverts(self, micro_with_prefixes):
        shares = customer_egress_shares(micro_with_prefixes, 6, 3, True)
        assert shares[3] < shares[4]

    def test_unknown_primary_falls_back(self, micro_with_prefixes):
        shares = customer_egress_shares(micro_with_prefixes, 6, 999, False)
        assert shares[3] == pytest.approx(0.85)  # lowest ASN fallback

    def test_no_providers(self, micro_with_prefixes):
        assert customer_egress_shares(micro_with_prefixes, 1, None, False) == {}


class TestSourcePools:
    def test_own_entry_first(self, micro_with_prefixes):
        pools = build_source_pools(micro_with_prefixes, [3], set())
        own = [e for e in pools[3].entries if e.kind is SourceKind.OWN]
        assert len(own) == 1
        assert own[0].origin == 3

    def test_customer_entries(self, micro_with_prefixes):
        pools = build_source_pools(micro_with_prefixes, [3], set())
        customers = {
            e.origin
            for e in pools[3].entries
            if e.kind is SourceKind.CUSTOMER
        }
        assert customers == {5, 6}

    def test_stub_pool_is_own_only(self, micro_with_prefixes):
        pools = build_source_pools(micro_with_prefixes, [5], set())
        assert [e.kind for e in pools[5].entries] == [SourceKind.OWN]

    def test_hidden_sibling_entries(self, micro_with_prefixes):
        # AS6 and AS8 share an org with no visible link.
        pools = build_source_pools(micro_with_prefixes, [6], set())
        siblings = [
            e for e in pools[6].entries if e.kind is SourceKind.SIBLING
        ]
        assert siblings
        assert all(e.hidden for e in siblings)
        assert {e.origin for e in siblings} == {8}

    def test_peer_entries_only_for_transit_members(self, micro_with_prefixes):
        pools_plain = build_source_pools(micro_with_prefixes, [1], set())
        pools_transit = build_source_pools(micro_with_prefixes, [1], {1})
        peers_plain = [
            e for e in pools_plain[1].entries if e.kind is SourceKind.PEER_TRANSIT
        ]
        peers_transit = [
            e for e in pools_transit[1].entries if e.kind is SourceKind.PEER_TRANSIT
        ]
        assert not peers_plain
        assert {e.origin for e in peers_transit} == {2, 4, 6, 7, 8}

    def test_partial_transit_without_membership(self, micro_with_prefixes):
        micro_with_prefixes.partial_transit.add((1, 2))
        pools = build_source_pools(micro_with_prefixes, [1], set())
        peers = {
            e.origin
            for e in pools[1].entries
            if e.kind is SourceKind.PEER_TRANSIT
        }
        assert 2 in peers

    def test_pa_space_entry(self, micro_with_prefixes):
        pa_prefix = Prefix((3 << 24) + 256, 24)  # inside AS3's block
        micro_with_prefixes.pa_assignments.append((6, 3, pa_prefix))
        pools = build_source_pools(micro_with_prefixes, [6], set())
        pa = [e for e in pools[6].entries if e.kind is SourceKind.PA_SPACE]
        assert len(pa) == 1
        assert pa[0].origin == 3  # LPM owner is the provider
        assert pa[0].hidden

    def test_backup_transit_entry(self, micro_with_prefixes):
        micro_with_prefixes.backup_transit.add((4, 5))
        pools = build_source_pools(micro_with_prefixes, [4], set())
        backup = [
            e for e in pools[4].entries if e.kind is SourceKind.BACKUP_TRANSIT
        ]
        assert {e.origin for e in backup} == {5}
        assert all(e.hidden for e in backup)

    def test_tunnel_entry(self, micro_with_prefixes):
        micro_with_prefixes.tunnels.add((5, 7))
        pools = build_source_pools(micro_with_prefixes, [5], set())
        tunnels = [e for e in pools[5].entries if e.kind is SourceKind.TUNNEL]
        assert {e.origin for e in tunnels} == {7}
        assert tunnels[0].weight > 1.0  # dominates the carrier's mix

    def test_visible_hidden_split(self, micro_with_prefixes):
        micro_with_prefixes.tunnels.add((5, 7))
        pools = build_source_pools(micro_with_prefixes, [5], set())
        pool = pools[5]
        assert len(pool.visible_entries()) + len(pool.hidden_entries()) == len(
            pool.entries
        )

    def test_asymmetric_customer_weight_shift(self, micro_with_prefixes):
        # AS6 multihomed to 3 and 4; make it asymmetric with primary 3:
        # its entry in AS4's pool (via backup) should gain weight.
        sym = build_source_pools(micro_with_prefixes, [4], set())
        asym = build_source_pools(
            micro_with_prefixes, [4], set(),
            primary_providers={6: 3}, asymmetric_asns={6},
        )
        def weight_of(pools):
            return next(
                e.weight
                for e in pools[4].entries
                if e.kind is SourceKind.CUSTOMER and e.origin == 6
            )
        assert weight_of(asym) > weight_of(sym)
