"""Shared fixtures: deterministic RNGs, micro-topologies, built worlds."""

from __future__ import annotations

import os
import pathlib

import numpy as np
import pytest

from repro.experiments import WorldConfig, build_world
from repro.topology.model import ASNode, ASTopology, BusinessType, Relationship


@pytest.fixture(autouse=True)
def _concurrency_sanitizer(request, monkeypatch):
    """Opt-in runtime concurrency sanitizer (``REPRO_SANITIZE=1``).

    Arms the fsync-protocol and lock-order interpositions for every
    test, auto-watches each :class:`DurableWatch` the test constructs
    (its attribute sharing is checked against the class's
    ``_CONCURRENCY_CONTRACT``), and fails the test — dumping the lock
    graph and access trace under ``REPRO_SANITIZE_ARTIFACTS`` — on any
    violation. See ``docs/CONCURRENCY.md``.
    """
    if os.environ.get("REPRO_SANITIZE") != "1":
        yield
        return
    if request.node.get_closest_marker("sanitizer_self_test"):
        # The sanitizer's own unit tests arm private monitor instances
        # and violate them on purpose; a session-level sanitizer would
        # double-report those staged violations as real ones.
        yield
        return
    from repro.stream.durable.daemon import DurableWatch
    from repro.testing.sanitizer import ConcurrencySanitizer

    sanitizer = ConcurrencySanitizer()
    sanitizer.install()
    original_init = DurableWatch.__init__

    def watched_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        sanitizer.tracer.watch(self)

    monkeypatch.setattr(DurableWatch, "__init__", watched_init)
    try:
        yield
    finally:
        sanitizer.uninstall()
    violations = sanitizer.violations()
    if violations:
        artifacts = pathlib.Path(
            os.environ.get("REPRO_SANITIZE_ARTIFACTS", "sanitizer-artifacts")
        )
        sanitizer.write_artifacts(artifacts)
        pytest.fail(
            f"concurrency sanitizer: {len(violations)} violation(s); "
            f"artifacts in {artifacts}/ — first: {violations[0]}"
        )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def make_micro_topology() -> ASTopology:
    """A hand-built 8-AS topology with every relationship kind.

    Layout::

        T1a (1) ---peer--- T1b (2)
         |                  |
        T2a (3)            T2b (4)
         |   \\            |
        C1 (5) C2 (6)      C3 (7)     S (8, sibling of C2 via org)

    C2 is multihomed to T2a and T2b. S shares C2's organization but has
    no BGP-visible link to it.
    """
    topo = ASTopology()
    nodes = [
        ASNode(1, BusinessType.NSP, tier=1, org_id=1),
        ASNode(2, BusinessType.NSP, tier=1, org_id=2),
        ASNode(3, BusinessType.NSP, tier=2, org_id=3),
        ASNode(4, BusinessType.NSP, tier=2, org_id=4),
        ASNode(5, BusinessType.ISP, tier=3, org_id=5),
        ASNode(6, BusinessType.HOSTING, tier=3, org_id=6),
        ASNode(7, BusinessType.CONTENT, tier=3, org_id=7),
        ASNode(8, BusinessType.OTHER, tier=3, org_id=6),  # C2's org
    ]
    for node in nodes:
        topo.add_as(node)
    topo.add_link(1, 2, Relationship.PEER)
    topo.add_link(3, 1, Relationship.CUSTOMER_OF)
    topo.add_link(4, 2, Relationship.CUSTOMER_OF)
    topo.add_link(5, 3, Relationship.CUSTOMER_OF)
    topo.add_link(6, 3, Relationship.CUSTOMER_OF)
    topo.add_link(6, 4, Relationship.CUSTOMER_OF)
    topo.add_link(7, 4, Relationship.CUSTOMER_OF)
    # AS8 intentionally has no visible link: hidden org sibling of 6.
    topo.add_link(8, 4, Relationship.CUSTOMER_OF)
    topo.orgs[6].in_as2org = False
    return topo


@pytest.fixture()
def micro_topology() -> ASTopology:
    return make_micro_topology()


@pytest.fixture(scope="session")
def tiny_world():
    """A fully built tiny world (topology+BGP+traffic+classification)."""
    return build_world(WorldConfig.tiny())


@pytest.fixture(scope="session")
def small_world():
    """The small preset world (fast, for mid-size integration tests)."""
    return build_world(WorldConfig.small())


@pytest.fixture(scope="session")
def default_world():
    """The default preset world — the paper-shape integration tests
    need its volume for the attack statistics to stabilise."""
    return build_world(WorldConfig.default())


@pytest.fixture(scope="session")
def bgp_only_world():
    """A tiny world without traffic (fast BGP/cones-only tests)."""
    return build_world(WorldConfig.tiny(seed=77), with_traffic=False)
