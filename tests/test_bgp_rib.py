"""Tests for the global RIB."""

import numpy as np
import pytest

from repro.bgp.messages import RouteObservation
from repro.bgp.rib import MAX_PLEN, MIN_PLEN, GlobalRIB
from repro.net.addr import addr_to_int
from repro.net.prefix import Prefix


def obs(prefix: str, *path: int, source="rrc00", ts=0, update=False):
    return RouteObservation(
        prefix=Prefix.parse(prefix),
        path=tuple(path),
        source=source,
        timestamp=ts,
        from_update=update,
    )


def wd(prefix: str, *path: int, source="rrc00", ts=0):
    return RouteObservation(
        prefix=Prefix.parse(prefix),
        path=tuple(path),
        source=source,
        timestamp=ts,
        from_update=True,
        withdrawal=True,
    )


@pytest.fixture()
def rib():
    r = GlobalRIB()
    r.add(obs("10.0.0.0/16", 100, 200, 300))
    r.add(obs("10.0.0.0/16", 101, 200, 300))
    r.add(obs("10.0.128.0/17", 100, 400))  # more specific, other origin
    r.add(obs("20.0.0.0/16", 100, 200))
    return r


class TestLengthFilter:
    def test_too_specific_dropped(self):
        r = GlobalRIB()
        assert not r.add(obs("10.0.0.0/25", 1, 2))
        assert r.num_prefixes == 0
        assert r.num_discarded == 1

    def test_too_coarse_dropped(self):
        r = GlobalRIB()
        assert not r.add(obs("10.0.0.0/7", 1, 2))
        assert r.num_discarded == 1

    def test_boundaries_accepted(self):
        r = GlobalRIB()
        assert r.add(obs("10.0.0.0/8", 1, 2))
        assert r.add(obs("10.0.0.0/24", 1, 2))
        assert MIN_PLEN == 8 and MAX_PLEN == 24


class TestAccumulation:
    def test_num_prefixes(self, rib):
        assert rib.num_prefixes == 3

    def test_duplicate_routes_deduped(self, rib):
        before = rib.num_paths
        rib.add(obs("10.0.0.0/16", 100, 200, 300))
        assert rib.num_paths == before

    def test_duplicate_routes_not_accepted(self, rib):
        # Regression: duplicates used to bump the accepted counter and
        # return True, so add_all over-reported.
        before = rib.num_accepted
        assert not rib.add(obs("10.0.0.0/16", 100, 200, 300))
        assert rib.num_accepted == before
        assert rib.add_all([obs("10.0.0.0/16", 100, 200, 300)]) == 0

    def test_duplicate_keeps_finalized_cache(self, rib):
        # Regression: a duplicate/no-op observation must not clear the
        # finalized vectorised views (identity, not just equality).
        rib.lookup(addr_to_int("10.0.1.1"))  # build the finalized view
        finalized = rib._final()
        rib.add(obs("10.0.0.0/16", 100, 200, 300))  # duplicate
        assert rib._final() is finalized
        rib.add(obs("10.0.0.0/25", 1, 2))  # length-filtered no-op
        assert rib._final() is finalized
        rib.add(obs("10.0.0.0/16", 55, 300))  # genuinely new route
        assert rib._final() is not finalized

    def test_withdrawal_keeps_finalized_cache(self, rib):
        rib.lookup(addr_to_int("10.0.1.1"))
        finalized = rib._final()
        withdrawal = RouteObservation(
            prefix=Prefix.parse("10.0.0.0/16"),
            path=(100, 200, 300),
            source="rrc00",
            withdrawal=True,
        )
        assert not rib.add(withdrawal)
        assert rib._final() is finalized

    def test_new_path_same_prefix_accepted(self, rib):
        before = rib.num_accepted
        assert rib.add(obs("10.0.0.0/16", 102, 200, 300))
        assert rib.num_accepted == before + 1

    def test_origin_majority_vote(self, rib):
        pid = rib.prefix_id(Prefix.parse("10.0.0.0/16"))
        assert rib.origin_of(pid) == 300

    def test_moas_origins(self):
        r = GlobalRIB()
        r.add(obs("10.0.0.0/16", 1, 2))
        r.add(obs("10.0.0.0/16", 1, 3))
        pid = r.prefix_id(Prefix.parse("10.0.0.0/16"))
        assert r.origins_of(pid) == {2, 3}

    def test_path_members(self, rib):
        pid = rib.prefix_id(Prefix.parse("10.0.0.0/16"))
        assert rib.path_members(pid) == {100, 101, 200, 300}

    def test_adjacencies_are_directed(self, rib):
        adj = rib.adjacencies()
        assert (100, 200) in adj
        assert (200, 300) in adj
        assert (300, 200) not in adj

    def test_prepending_collapses(self):
        r = GlobalRIB()
        r.add(obs("10.0.0.0/16", 1, 2, 2, 2, 3))
        assert (2, 2) not in r.adjacencies()
        assert (2, 3) in r.adjacencies()

    def test_observed_asns(self, rib):
        assert rib.observed_asns() == {100, 101, 200, 300, 400}


class TestLookup:
    def test_lpm_prefers_more_specific(self, rib):
        pid, origin_index = rib.lookup(addr_to_int("10.0.200.1"))
        assert rib.prefix_by_id(pid) == Prefix.parse("10.0.128.0/17")
        assert rib.indexer.asn(origin_index) == 400

    def test_lookup_covering(self, rib):
        pid, origin_index = rib.lookup(addr_to_int("10.0.1.1"))
        assert rib.prefix_by_id(pid) == Prefix.parse("10.0.0.0/16")
        assert rib.indexer.asn(origin_index) == 300

    def test_lookup_unrouted(self, rib):
        pid, origin_index = rib.lookup(addr_to_int("9.9.9.9"))
        assert pid == -1
        assert origin_index == -1

    def test_lookup_many_matches_scalar(self, rib):
        addrs = np.array(
            [
                addr_to_int("10.0.200.1"),
                addr_to_int("10.0.1.1"),
                addr_to_int("9.9.9.9"),
                addr_to_int("20.0.50.1"),
            ],
            dtype=np.uint64,
        )
        pids, origins = rib.lookup_many(addrs)
        for i, addr in enumerate(addrs):
            s_pid, s_origin = rib.lookup(int(addr))
            assert pids[i] == s_pid
            assert origins[i] == s_origin

    def test_routed_space(self, rib):
        space = rib.routed_space()
        assert addr_to_int("10.0.0.1") in space
        assert addr_to_int("20.0.0.1") in space
        assert addr_to_int("30.0.0.1") not in space

    def test_lookup_after_mutation_refreshes(self, rib):
        # Finalized views must invalidate when new routes arrive.
        assert rib.lookup(addr_to_int("30.0.0.1"))[0] == -1
        rib.add(obs("30.0.0.0/16", 1, 2))
        assert rib.lookup(addr_to_int("30.0.0.1"))[0] != -1


class TestDeltaWithdrawals:
    """Delta-mode (``apply``) route removal and cache coherence."""

    def test_withdraw_removes_live_route(self):
        r = GlobalRIB()
        r.apply(obs("10.0.0.0/16", 1, 2, 3))
        pid = r.prefix_id(Prefix.parse("10.0.0.0/16"))
        assert r.is_live(pid)
        delta = r.apply(wd("10.0.0.0/16", 1, 2, 3))
        assert delta.applied and delta.withdrawal
        assert not r.is_live(pid)
        assert r.num_live_routes == 0
        assert r.lookup(addr_to_int("10.0.1.1"))[0] == -1

    def test_dead_prefix_keeps_stable_id(self):
        r = GlobalRIB()
        r.apply(obs("10.0.0.0/16", 1, 2))
        r.apply(obs("20.0.0.0/16", 1, 3))
        pid_20 = r.prefix_id(Prefix.parse("20.0.0.0/16"))
        r.apply(wd("10.0.0.0/16", 1, 2))
        assert r.prefix_id(Prefix.parse("20.0.0.0/16")) == pid_20
        assert r.live_prefix_ids() == [pid_20]
        with pytest.raises(ValueError):
            r.origin_of(r.prefix_id(Prefix.parse("10.0.0.0/16")))

    def test_path_member_cache_evicted_on_path_death(self):
        # Regression: a withdrawn path's member cache survived as a
        # stale entry, so a later re-announcement through a *changed*
        # interning path could resurrect outdated member sets.
        r = GlobalRIB()
        r.apply(obs("10.0.0.0/16", 1, 2, 3))
        pid = r.prefix_id(Prefix.parse("10.0.0.0/16"))
        assert r.path_members(pid) == {1, 2, 3}
        assert (1, 2, 3) in r._path_member_cache
        r.apply(wd("10.0.0.0/16", 1, 2, 3))
        assert (1, 2, 3) not in r._path_member_cache
        assert r.path_members(pid) == set()

    def test_shared_path_cache_survives_partial_withdraw(self):
        # Two prefixes share a path: withdrawing one must keep the
        # cache entry (the path is still live for the other prefix).
        r = GlobalRIB()
        r.apply(obs("10.0.0.0/16", 1, 2, 3))
        r.apply(obs("20.0.0.0/16", 1, 2, 3))
        r.apply(wd("10.0.0.0/16", 1, 2, 3))
        assert (1, 2, 3) in r._path_member_cache
        pid = r.prefix_id(Prefix.parse("20.0.0.0/16"))
        assert r.path_members(pid) == {1, 2, 3}
        assert r.observed_asns() == {1, 2, 3}

    def test_reannounce_after_withdraw_round_trips(self):
        r = GlobalRIB()
        r.apply(obs("10.0.0.0/16", 1, 2, 3))
        r.apply(wd("10.0.0.0/16", 1, 2, 3))
        delta = r.apply(obs("10.0.0.0/16", 1, 2, 3))
        assert delta.applied
        pid = r.prefix_id(Prefix.parse("10.0.0.0/16"))
        assert r.is_live(pid)
        assert r.path_members(pid) == {1, 2, 3}
        assert r.origin_of(pid) == 3
        assert r.lookup(addr_to_int("10.0.1.1"))[0] == pid

    def test_withdraw_shrinks_member_set_not_counters_only(self):
        # Interleaved add/withdraw/query: member sets must be
        # recomputed from live paths, not left as unions.
        r = GlobalRIB()
        r.apply(obs("10.0.0.0/16", 1, 2, 9))
        r.apply(obs("10.0.0.0/16", 5, 6, 9))
        pid = r.prefix_id(Prefix.parse("10.0.0.0/16"))
        assert r.path_members(pid) == {1, 2, 5, 6, 9}
        delta = r.apply(wd("10.0.0.0/16", 1, 2, 9))
        assert delta.members_removed[pid] == {1, 2}
        assert r.path_members(pid) == {5, 6, 9}
        assert r.observed_asns() == {5, 6, 9}
        assert (1, 2) not in r.adjacencies()

    def test_withdraw_moas_origin_flip(self):
        r = GlobalRIB()
        r.apply(obs("10.0.0.0/16", 1, 7))
        r.apply(obs("10.0.0.0/16", 2, 7))
        r.apply(obs("10.0.0.0/16", 3, 8))
        pid = r.prefix_id(Prefix.parse("10.0.0.0/16"))
        assert r.origin_of(pid) == 7
        delta = r.apply(wd("10.0.0.0/16", 1, 7))
        assert not delta.origin_changes  # 7 still wins 1 vote vs 1, tie→min
        r.apply(wd("10.0.0.0/16", 2, 7))
        assert r.origin_of(pid) == 8
        assert r.origins_of(pid) == {8}

    def test_finalized_patched_in_place(self):
        r = GlobalRIB()
        r.apply(obs("10.0.0.0/16", 1, 2))
        r.apply(obs("20.0.0.0/16", 1, 2))  # keeps ASNs 1, 2 alive below
        r.lookup(addr_to_int("10.0.0.1"))  # build the finalized view
        finalized = r._final()
        delta = r.apply(wd("10.0.0.0/16", 1, 2))
        assert delta.finalize == "patched"
        assert r._final() is finalized  # patched, not rebuilt
        assert r.lookup(addr_to_int("10.0.0.1"))[0] == -1
        assert r.lookup(addr_to_int("20.0.0.1"))[0] != -1

    def test_new_asn_forces_rebuild(self):
        r = GlobalRIB()
        r.apply(obs("10.0.0.0/16", 1, 2))
        r.lookup(addr_to_int("10.0.0.1"))
        finalized = r._final()
        delta = r.apply(obs("20.0.0.0/16", 1, 99))
        assert delta.rebuild_required
        assert delta.finalize == "rebuild"
        assert r._final() is not finalized
        assert r.indexer.index(99) >= 0


class TestWithdrawalCounters:
    """Counter algebra under delta mode (and the union path)."""

    def test_never_announced_prefix_ignored(self):
        r = GlobalRIB()
        r.apply(obs("10.0.0.0/16", 1, 2))
        delta = r.apply(wd("99.0.0.0/16", 1, 2))
        assert not delta.applied
        assert r.num_withdrawals == 1
        assert r.num_withdrawals_ignored == 1
        assert r.num_withdrawals_applied == 0
        assert r.num_live_routes == 1

    def test_unknown_path_ignored(self):
        r = GlobalRIB()
        r.apply(obs("10.0.0.0/16", 1, 2))
        delta = r.apply(wd("10.0.0.0/16", 5, 2))
        assert not delta.applied
        assert r.num_withdrawals_ignored == 1
        assert r.num_live_routes == 1

    def test_duplicate_withdrawal_not_double_counted(self):
        # Regression: the second withdrawal of the same route used to
        # drive refcounts negative and double-count as applied.
        r = GlobalRIB()
        r.apply(obs("10.0.0.0/16", 1, 2))
        assert r.apply(wd("10.0.0.0/16", 1, 2)).applied
        assert not r.apply(wd("10.0.0.0/16", 1, 2)).applied
        assert r.num_withdrawals == 2
        assert r.num_withdrawals_applied == 1
        assert r.num_withdrawals_ignored == 1
        assert r.num_live_routes == 0
        # A third one after re-announce applies again, cleanly.
        r.apply(obs("10.0.0.0/16", 1, 2))
        assert r.apply(wd("10.0.0.0/16", 1, 2)).applied
        assert r.num_withdrawals_applied == 2

    def test_union_mode_counts_withdrawals_as_ignored(self, rib):
        assert not rib.add(wd("10.0.0.0/16", 100, 200, 300))
        assert rib.num_withdrawals == 1
        assert rib.num_withdrawals_ignored == 1
        assert rib.num_withdrawals_applied == 0
        # Union semantics: the route is still installed.
        pid = rib.prefix_id(Prefix.parse("10.0.0.0/16"))
        assert rib.is_live(pid)

    def test_counter_algebra_random_sequence(self):
        rng = np.random.default_rng(4242)
        r = GlobalRIB()
        prefixes = [f"{10 + i}.0.0.0/16" for i in range(6)]
        paths = [(1, 2, 3), (4, 5, 3), (1, 6), (7, 8, 9)]
        for _ in range(400):
            prefix = prefixes[rng.integers(len(prefixes))]
            path = paths[rng.integers(len(paths))]
            if rng.random() < 0.45:
                r.apply(wd(prefix, *path))
            else:
                r.apply(obs(prefix, *path))
            assert r.num_withdrawals == (
                r.num_withdrawals_applied + r.num_withdrawals_ignored
            )
            assert (
                r.num_accepted - r.num_withdrawals_applied
                == r.num_live_routes
            )

    def test_counters_match_quarantine_report(self, tmp_path):
        from repro.errors import Quarantine
        from repro.io import load_route_dump, write_route_dump

        events = [
            obs("10.0.0.0/16", 1, 2, 3, update=True),
            obs("10.0.0.0/16", 1, 2, 3, update=True),  # duplicate
            obs("20.0.0.0/16", 4, 5, update=True),
            wd("20.0.0.0/16", 4, 5),
            wd("20.0.0.0/16", 4, 5),  # duplicate withdrawal
            wd("30.0.0.0/16", 4, 5),  # never announced
            obs("40.0.0.0/28", 1, 2, update=True),  # length-filtered
        ]
        path = tmp_path / "updates.dump"
        written = write_route_dump(events, path)
        with open(path, "a") as handle:
            handle.write("TABLE_DUMP2|0|A|rrc00|1|garbage|1 2\n")
            handle.write("not a record at all\n")
        quarantine = Quarantine(source=str(path))
        r = GlobalRIB()
        n_loaded = 0
        for event in load_route_dump(
            path, on_error="quarantine", quarantine=quarantine
        ):
            n_loaded += 1
            r.apply(event)
        # Every line is accounted for exactly once: parsed or
        # quarantined, and every parsed record lands in exactly one
        # RIB counter bucket.
        assert len(quarantine) == 2
        assert n_loaded == written
        assert (
            r.num_accepted
            + r.num_duplicates
            + r.num_discarded
            + r.num_withdrawals
            == n_loaded
        )
        assert r.num_withdrawals == 3
        assert r.num_withdrawals_applied == 1
        assert r.num_withdrawals_ignored == 2
        assert r.num_accepted - r.num_withdrawals_applied == r.num_live_routes


class TestExclusiveCoverage:
    def test_sums_to_routed_space(self, rib):
        per_prefix = rib.exclusive_slash24s_per_prefix()
        assert per_prefix.sum() == pytest.approx(
            rib.routed_space().slash24_equivalents
        )

    def test_more_specific_claims_space(self, rib):
        pid_16 = rib.prefix_id(Prefix.parse("10.0.0.0/16"))
        pid_17 = rib.prefix_id(Prefix.parse("10.0.128.0/17"))
        per_prefix = rib.exclusive_slash24s_per_prefix()
        assert per_prefix[pid_17] == 128  # the /17's own half
        assert per_prefix[pid_16] == 128  # the /16 minus the /17

    def test_per_origin_aggregation(self, rib):
        per_origin = rib.exclusive_slash24s_per_origin()
        idx_200 = rib.indexer.index(200)  # origin of 20.0.0.0/16
        idx_300 = rib.indexer.index(300)  # origin of 10.0.0.0/16
        idx_400 = rib.indexer.index(400)  # origin of 10.0.128.0/17
        assert per_origin[idx_200] == 256
        assert per_origin[idx_300] == 128
        assert per_origin[idx_400] == 128

    def test_empty_rib(self):
        r = GlobalRIB()
        assert r.routed_space().num_addresses == 0
        pids, origins = r.lookup_many(np.array([1, 2], dtype=np.uint64))
        assert (pids == -1).all()
