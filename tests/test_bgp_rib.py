"""Tests for the global RIB."""

import numpy as np
import pytest

from repro.bgp.messages import RouteObservation
from repro.bgp.rib import MAX_PLEN, MIN_PLEN, GlobalRIB
from repro.net.addr import addr_to_int
from repro.net.prefix import Prefix


def obs(prefix: str, *path: int, source="rrc00", ts=0, update=False):
    return RouteObservation(
        prefix=Prefix.parse(prefix),
        path=tuple(path),
        source=source,
        timestamp=ts,
        from_update=update,
    )


@pytest.fixture()
def rib():
    r = GlobalRIB()
    r.add(obs("10.0.0.0/16", 100, 200, 300))
    r.add(obs("10.0.0.0/16", 101, 200, 300))
    r.add(obs("10.0.128.0/17", 100, 400))  # more specific, other origin
    r.add(obs("20.0.0.0/16", 100, 200))
    return r


class TestLengthFilter:
    def test_too_specific_dropped(self):
        r = GlobalRIB()
        assert not r.add(obs("10.0.0.0/25", 1, 2))
        assert r.num_prefixes == 0
        assert r.num_discarded == 1

    def test_too_coarse_dropped(self):
        r = GlobalRIB()
        assert not r.add(obs("10.0.0.0/7", 1, 2))
        assert r.num_discarded == 1

    def test_boundaries_accepted(self):
        r = GlobalRIB()
        assert r.add(obs("10.0.0.0/8", 1, 2))
        assert r.add(obs("10.0.0.0/24", 1, 2))
        assert MIN_PLEN == 8 and MAX_PLEN == 24


class TestAccumulation:
    def test_num_prefixes(self, rib):
        assert rib.num_prefixes == 3

    def test_duplicate_routes_deduped(self, rib):
        before = rib.num_paths
        rib.add(obs("10.0.0.0/16", 100, 200, 300))
        assert rib.num_paths == before

    def test_duplicate_routes_not_accepted(self, rib):
        # Regression: duplicates used to bump the accepted counter and
        # return True, so add_all over-reported.
        before = rib.num_accepted
        assert not rib.add(obs("10.0.0.0/16", 100, 200, 300))
        assert rib.num_accepted == before
        assert rib.add_all([obs("10.0.0.0/16", 100, 200, 300)]) == 0

    def test_duplicate_keeps_finalized_cache(self, rib):
        # Regression: a duplicate/no-op observation must not clear the
        # finalized vectorised views (identity, not just equality).
        rib.lookup(addr_to_int("10.0.1.1"))  # build the finalized view
        finalized = rib._final()
        rib.add(obs("10.0.0.0/16", 100, 200, 300))  # duplicate
        assert rib._final() is finalized
        rib.add(obs("10.0.0.0/25", 1, 2))  # length-filtered no-op
        assert rib._final() is finalized
        rib.add(obs("10.0.0.0/16", 55, 300))  # genuinely new route
        assert rib._final() is not finalized

    def test_withdrawal_keeps_finalized_cache(self, rib):
        rib.lookup(addr_to_int("10.0.1.1"))
        finalized = rib._final()
        withdrawal = RouteObservation(
            prefix=Prefix.parse("10.0.0.0/16"),
            path=(100, 200, 300),
            source="rrc00",
            withdrawal=True,
        )
        assert not rib.add(withdrawal)
        assert rib._final() is finalized

    def test_new_path_same_prefix_accepted(self, rib):
        before = rib.num_accepted
        assert rib.add(obs("10.0.0.0/16", 102, 200, 300))
        assert rib.num_accepted == before + 1

    def test_origin_majority_vote(self, rib):
        pid = rib.prefix_id(Prefix.parse("10.0.0.0/16"))
        assert rib.origin_of(pid) == 300

    def test_moas_origins(self):
        r = GlobalRIB()
        r.add(obs("10.0.0.0/16", 1, 2))
        r.add(obs("10.0.0.0/16", 1, 3))
        pid = r.prefix_id(Prefix.parse("10.0.0.0/16"))
        assert r.origins_of(pid) == {2, 3}

    def test_path_members(self, rib):
        pid = rib.prefix_id(Prefix.parse("10.0.0.0/16"))
        assert rib.path_members(pid) == {100, 101, 200, 300}

    def test_adjacencies_are_directed(self, rib):
        adj = rib.adjacencies()
        assert (100, 200) in adj
        assert (200, 300) in adj
        assert (300, 200) not in adj

    def test_prepending_collapses(self):
        r = GlobalRIB()
        r.add(obs("10.0.0.0/16", 1, 2, 2, 2, 3))
        assert (2, 2) not in r.adjacencies()
        assert (2, 3) in r.adjacencies()

    def test_observed_asns(self, rib):
        assert rib.observed_asns() == {100, 101, 200, 300, 400}


class TestLookup:
    def test_lpm_prefers_more_specific(self, rib):
        pid, origin_index = rib.lookup(addr_to_int("10.0.200.1"))
        assert rib.prefix_by_id(pid) == Prefix.parse("10.0.128.0/17")
        assert rib.indexer.asn(origin_index) == 400

    def test_lookup_covering(self, rib):
        pid, origin_index = rib.lookup(addr_to_int("10.0.1.1"))
        assert rib.prefix_by_id(pid) == Prefix.parse("10.0.0.0/16")
        assert rib.indexer.asn(origin_index) == 300

    def test_lookup_unrouted(self, rib):
        pid, origin_index = rib.lookup(addr_to_int("9.9.9.9"))
        assert pid == -1
        assert origin_index == -1

    def test_lookup_many_matches_scalar(self, rib):
        addrs = np.array(
            [
                addr_to_int("10.0.200.1"),
                addr_to_int("10.0.1.1"),
                addr_to_int("9.9.9.9"),
                addr_to_int("20.0.50.1"),
            ],
            dtype=np.uint64,
        )
        pids, origins = rib.lookup_many(addrs)
        for i, addr in enumerate(addrs):
            s_pid, s_origin = rib.lookup(int(addr))
            assert pids[i] == s_pid
            assert origins[i] == s_origin

    def test_routed_space(self, rib):
        space = rib.routed_space()
        assert addr_to_int("10.0.0.1") in space
        assert addr_to_int("20.0.0.1") in space
        assert addr_to_int("30.0.0.1") not in space

    def test_lookup_after_mutation_refreshes(self, rib):
        # Finalized views must invalidate when new routes arrive.
        assert rib.lookup(addr_to_int("30.0.0.1"))[0] == -1
        rib.add(obs("30.0.0.0/16", 1, 2))
        assert rib.lookup(addr_to_int("30.0.0.1"))[0] != -1


class TestExclusiveCoverage:
    def test_sums_to_routed_space(self, rib):
        per_prefix = rib.exclusive_slash24s_per_prefix()
        assert per_prefix.sum() == pytest.approx(
            rib.routed_space().slash24_equivalents
        )

    def test_more_specific_claims_space(self, rib):
        pid_16 = rib.prefix_id(Prefix.parse("10.0.0.0/16"))
        pid_17 = rib.prefix_id(Prefix.parse("10.0.128.0/17"))
        per_prefix = rib.exclusive_slash24s_per_prefix()
        assert per_prefix[pid_17] == 128  # the /17's own half
        assert per_prefix[pid_16] == 128  # the /16 minus the /17

    def test_per_origin_aggregation(self, rib):
        per_origin = rib.exclusive_slash24s_per_origin()
        idx_200 = rib.indexer.index(200)  # origin of 20.0.0.0/16
        idx_300 = rib.indexer.index(300)  # origin of 10.0.0.0/16
        idx_400 = rib.indexer.index(400)  # origin of 10.0.128.0/17
        assert per_origin[idx_200] == 256
        assert per_origin[idx_300] == 128
        assert per_origin[idx_400] == 128

    def test_empty_rib(self):
        r = GlobalRIB()
        assert r.routed_space().num_addresses == 0
        pids, origins = r.lookup_many(np.array([1, 2], dtype=np.uint64))
        assert (pids == -1).all()
