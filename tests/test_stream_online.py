"""The online pipeline: events, windowing, and version-aware pools.

Satellite contracts under test:

* randomized window parity — classifying an interleaved route/flow
  stream online (state patched in place, per-window ``classify_stream``
  calls, optionally through worker pools under fork *and* spawn) is
  bit-equal to classifying every chunk against a from-scratch rebuild
  of RIB + valid-space maps over the same route history;
* version-aware pools — a matrix patched *between chunks of one
  stream* must be visible to every later chunk, even when a worker is
  killed and its chunk resubmitted to a rebuilt pool;
* stream hygiene — timestamp-regression guard, window-aligned flow
  chunking, deterministic merge tie-breaking, per-window manifests.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bgp.messages import RouteObservation
from repro.bgp.rib import GlobalRIB
from repro.cones.full_cone import FullConeValidSpace
from repro.cones.naive import NaiveValidSpace
from repro.core import FailurePolicy
from repro.ixp.flows import PROTO_TCP, FlowTable, TruthLabel
from repro.net.addr import addr_to_int
from repro.net.prefix import Prefix
from repro.stream import (
    FlowEvent,
    OnlineClassifier,
    OnlineValidState,
    RouteEvent,
    flow_events,
    merge_event_streams,
    route_events,
    update_stream,
)
from repro.testing import FaultPlan, FaultSpec

FAST_RETRY = FailurePolicy(
    mode="retry", max_retries=2, chunk_timeout=20.0, backoff_base=0.01
)

WINDOW = 100

ASNS = (1, 10, 20, 100, 200)
PREFIXES = ("60.0.0.0/16", "20.0.0.0/16", "30.0.0.0/16")
SRC_POOL = ("60.0.5.5", "20.0.0.9", "30.0.1.1", "9.9.9.9", "10.1.2.3")


def obs(prefix, *path, ts=0, withdrawal=False):
    return RouteObservation(
        prefix=Prefix.parse(prefix),
        path=tuple(path),
        source="rrc00",
        timestamp=ts,
        from_update=True,
        withdrawal=withdrawal,
    )


def base_routes():
    """Two routes keeping every ASN in the pool alive."""
    return [
        obs("60.0.0.0/16", 20, 1, 10, 100),
        obs("20.0.0.0/16", 10, 1, 20, 200),
    ]


def flow_table(rows, ts):
    """rows: list of (src_text, member); ``ts`` a scalar or per-row array."""
    n = len(rows)
    return FlowTable(
        src=np.array([addr_to_int(r[0]) for r in rows], dtype=np.uint64),
        dst=np.full(n, addr_to_int("20.0.0.1"), dtype=np.uint64),
        proto=np.full(n, PROTO_TCP),
        src_port=np.full(n, 1000),
        dst_port=np.full(n, 80),
        packets=np.full(n, 2),
        bytes=np.full(n, 120),
        member=np.array([r[1] for r in rows], dtype=np.int64),
        dst_member=np.full(n, 20, dtype=np.int64),
        time=np.broadcast_to(np.asarray(ts, dtype=np.int64), (n,)).copy(),
        truth=np.full(n, int(TruthLabel.LEGIT), dtype=np.uint8),
    )


def build_state(routes):
    rib = GlobalRIB()
    for route in routes:
        rib.apply(route)
    approaches = {
        "naive": NaiveValidSpace(rib),
        "full": FullConeValidSpace(rib),
    }
    return OnlineValidState(rib, approaches)


def reference_labels(route_history, flows):
    """From-scratch classification of one chunk: fresh RIB and maps."""
    state = build_state(route_history)
    result = state.classifier.classify(flows)
    return {
        name: result.label_vector(name) for name in ("naive", "full")
    }


def random_stream(rng, n_ticks=60):
    """An interleaved event stream plus its from-scratch reference.

    Returns ``(events, chunks)`` where each chunks entry is
    ``(window_index, flows, route_history_snapshot)``.
    """
    live = []
    route_log = []
    events = []
    chunks = []
    ts = 0
    for _ in range(n_ticks):
        ts += int(rng.integers(1, 12))
        roll = rng.random()
        if roll < 0.35:
            if live and rng.random() < 0.5:
                prefix, path = live.pop(int(rng.integers(len(live))))
                event = obs(prefix, *path, ts=ts, withdrawal=True)
            else:
                prefix = PREFIXES[rng.integers(len(PREFIXES))]
                length = int(rng.integers(2, 4))
                picked = rng.choice(len(ASNS), size=length, replace=False)
                path = tuple(ASNS[i] for i in picked)
                live.append((prefix, path))
                event = obs(prefix, *path, ts=ts)
            route_log.append(event)
            events.append(RouteEvent(event))
        elif roll < 0.80:
            n_rows = int(rng.integers(3, 9))
            rows = [
                (
                    SRC_POOL[rng.integers(len(SRC_POOL))],
                    ASNS[rng.integers(len(ASNS))],
                )
                for _ in range(n_rows)
            ]
            flows = flow_table(rows, ts)
            events.append(FlowEvent(flows, ts))
            chunks.append((ts // WINDOW, flows, list(route_log)))
    return events, chunks


def assert_window_parity(windows, chunks):
    """Per-window online labels == concatenated from-scratch labels."""
    online = {w.index: w for w in windows}
    expected = {}
    for window_index, flows, history in chunks:
        per_window = expected.setdefault(
            window_index, {"naive": [], "full": [], "n_flows": 0}
        )
        per_window["n_flows"] += len(flows)
        reference = reference_labels(base_routes() + history, flows)
        for name in ("naive", "full"):
            per_window[name].append(reference[name])
    for window_index, per_window in expected.items():
        window = online[window_index]
        assert window.n_flows == per_window["n_flows"]
        for name in ("naive", "full"):
            np.testing.assert_array_equal(
                window.result.label_vector(name),
                np.concatenate(per_window[name]),
                err_msg=f"window {window_index}, approach {name}",
            )


class TestFlowEvents:
    def test_window_aligned_chunks(self, rng):
        times = np.sort(rng.integers(0, 5 * WINDOW, size=300))
        rows = [
            (SRC_POOL[i % len(SRC_POOL)], ASNS[i % len(ASNS)])
            for i in range(300)
        ]
        table = flow_table(rows, times)
        events = list(
            flow_events(table, chunk_rows=48, window_seconds=WINDOW)
        )
        total = 0
        last_ts = None
        for event in events:
            assert len(event.flows) <= 48
            event_times = event.flows.time
            assert event.timestamp == int(event_times[0])
            assert (
                event_times // WINDOW == event_times[0] // WINDOW
            ).all(), "chunk straddles a window boundary"
            if last_ts is not None:
                assert event.timestamp >= last_ts
            last_ts = event.timestamp
            total += len(event.flows)
        assert total == 300

    def test_rejects_bad_parameters(self):
        table = flow_table([("60.0.5.5", 100)], 0)
        with pytest.raises(ValueError):
            list(flow_events(table, chunk_rows=0, window_seconds=WINDOW))
        with pytest.raises(ValueError):
            list(flow_events(table, chunk_rows=10, window_seconds=0))


class TestMergeStreams:
    def test_tie_breaks_in_stream_order(self):
        route = RouteEvent(obs("60.0.0.0/16", 20, 1, ts=50))
        flow = FlowEvent(flow_table([("60.0.5.5", 100)], 50), 50)
        merged = list(merge_event_streams(route_events([route.observation]), [flow]))
        assert isinstance(merged[0], RouteEvent)
        assert isinstance(merged[1], FlowEvent)

    def test_update_stream_filters_and_sorts_stably(self):
        dump = RouteObservation(
            Prefix.parse("60.0.0.0/16"), (20, 1), "rrc00", timestamp=5
        )
        first = obs("60.0.0.0/16", 20, 1, ts=9)
        second = obs("60.0.0.0/16", 20, 1, ts=9, withdrawal=True)
        early = obs("20.0.0.0/16", 10, 1, ts=2)
        assert update_stream([dump, first, second, early]) == [
            early, first, second,
        ]


class TestOnlineWindows:
    def test_randomized_window_parity_serial(self, rng):
        events, chunks = random_stream(rng)
        state = build_state(base_routes())
        online = OnlineClassifier(state, WINDOW, keep_labels=True)
        windows = list(online.run(events))
        assert sum(w.n_route_events for w in windows) == sum(
            1 for e in events if isinstance(e, RouteEvent)
        )
        assert_window_parity(windows, chunks)

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_randomized_window_parity_parallel(self, method, monkeypatch):
        monkeypatch.setenv("MP_START_METHOD", method)
        rng = np.random.default_rng(987)
        events, chunks = random_stream(rng, n_ticks=25)
        state = build_state(base_routes())
        online = OnlineClassifier(
            state, WINDOW, n_workers=2, policy=FAST_RETRY, keep_labels=True
        )
        windows = list(online.run(events))
        assert_window_parity(windows, chunks)

    def test_regressing_timestamp_raises(self):
        state = build_state(base_routes())
        online = OnlineClassifier(state, WINDOW, keep_labels=True)
        events = [
            FlowEvent(flow_table([("60.0.5.5", 100)], 150), 150),
            FlowEvent(flow_table([("60.0.5.5", 100)], 50), 50),
        ]
        with pytest.raises(ValueError, match="regressed"):
            list(online.run(events))

    def test_policy_defaults_to_retry_with_workers(self):
        state = build_state(base_routes())
        online = OnlineClassifier(state, WINDOW, n_workers=2)
        assert online.policy is not None
        assert online.policy.mode == "retry"
        serial = OnlineClassifier(state, WINDOW)
        assert serial.policy is None
        with pytest.raises(ValueError):
            OnlineClassifier(state, 0)

    def test_window_manifests_written(self, tmp_path, rng):
        events, chunks = random_stream(rng, n_ticks=30)
        state = build_state(base_routes())
        online = OnlineClassifier(
            state, WINDOW, keep_labels=True, manifest_dir=tmp_path
        )
        windows = list(online.run(events))
        files = sorted(tmp_path.glob("window_*.json"))
        assert len(files) == len(windows)
        for window, path in zip(windows, files):
            assert path.name == f"window_{window.index:06d}.json"
            data = json.loads(path.read_text())
            summary = data["window_summary"]
            assert summary["flows"] == window.n_flows
            assert summary["route_events"] == window.n_route_events
            assert summary["deltas_applied"] == window.n_deltas_applied
            assert summary["finalized_patched"] == window.n_patched
            assert data["command"] == "watch.window"


class TestVersionAwarePools:
    """Satellite: stale worker state on mid-stream matrix patches."""

    #: Adds member 200 to 60.0.0.0/16's paths without changing the
    #: observed AS set (200 already originates 20.0.0.0/16), so the
    #: finalized view is patched, not rebuilt.
    DELTA = ("60.0.0.0/16", (200, 1, 10, 100))

    def _rows(self):
        return [("60.0.5.5", 200)] * 6  # valid only after the delta

    def test_delta_flips_reference_labels(self):
        # The scenario has teeth: pre- and post-delta classifications
        # of the same rows genuinely differ.
        pre = reference_labels(base_routes(), flow_table(self._rows(), 0))
        post = reference_labels(
            base_routes() + [obs(self.DELTA[0], *self.DELTA[1])],
            flow_table(self._rows(), 0),
        )
        for name in ("naive", "full"):
            assert not (pre[name] == post[name]).all()

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_patch_between_chunks_visible_to_pool(
        self, method, monkeypatch
    ):
        monkeypatch.setenv("MP_START_METHOD", method)
        state = build_state(base_routes())
        flows_a = flow_table(self._rows(), 10)
        flows_b = flow_table(self._rows(), 20)

        def chunk_stream():
            yield flows_a
            delta = state.apply_route(obs(self.DELTA[0], *self.DELTA[1]))
            assert delta.finalize == "patched"
            yield flows_b

        stream = state.classifier.classify_stream(
            chunk_stream(), n_workers=2, keep_labels=True, policy=FAST_RETRY
        )
        pre = reference_labels(base_routes(), flows_a)
        post = reference_labels(
            base_routes() + [obs(self.DELTA[0], *self.DELTA[1])], flows_b
        )
        for name in ("naive", "full"):
            labels = stream.label_vector(name)
            np.testing.assert_array_equal(labels[:6], pre[name])
            np.testing.assert_array_equal(labels[6:], post[name])

    def test_patch_plus_worker_death_still_current(self):
        # Kill the worker handling the post-delta chunk: the rebuilt
        # pool must re-arm with the *patched* state, and the
        # resubmitted chunk must not see pre-delta matrices.
        state = build_state(base_routes())
        flows_a = flow_table(self._rows(), 10)
        flows_b = flow_table(self._rows(), 20)

        def chunk_stream():
            yield flows_a
            state.apply_route(obs(self.DELTA[0], *self.DELTA[1]))
            yield flows_b

        plan = FaultPlan((FaultSpec("die", 1),))
        policy = FailurePolicy(
            mode="retry", max_retries=1, chunk_timeout=1.5,
            backoff_base=0.01,
        )
        stream = state.classifier.classify_stream(
            chunk_stream(), n_workers=2, keep_labels=True, policy=policy,
            fault_injector=plan,
        )
        assert stream.complete
        post = reference_labels(
            base_routes() + [obs(self.DELTA[0], *self.DELTA[1])], flows_b
        )
        for name in ("naive", "full"):
            np.testing.assert_array_equal(
                stream.label_vector(name)[6:], post[name]
            )

    def test_state_version_counts_applied_only(self):
        state = build_state(base_routes())
        version = state.classifier.state_version
        state.apply_route(obs("99.0.0.0/16", 1, 2, withdrawal=True))
        assert state.classifier.state_version == version  # ignored
        state.apply_route(obs(self.DELTA[0], *self.DELTA[1]))
        assert state.classifier.state_version == version + 1
