"""Unit tests for the Patricia-style prefix trie."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addr import addr_to_int
from repro.net.prefix import Prefix
from repro.net.trie import PrefixTrie


@pytest.fixture()
def trie():
    t = PrefixTrie()
    t.insert(Prefix.parse("10.0.0.0/8"), "ten")
    t.insert(Prefix.parse("10.1.0.0/16"), "ten-one")
    t.insert(Prefix.parse("192.0.2.0/24"), "testnet")
    return t


class TestBasicOps:
    def test_len(self, trie):
        assert len(trie) == 3

    def test_exact_get(self, trie):
        assert trie.get(Prefix.parse("10.0.0.0/8")) == "ten"
        assert trie.get(Prefix.parse("10.1.0.0/16")) == "ten-one"

    def test_get_missing_returns_default(self, trie):
        assert trie.get(Prefix.parse("10.2.0.0/16")) is None
        assert trie.get(Prefix.parse("10.2.0.0/16"), "x") == "x"

    def test_contains(self, trie):
        assert Prefix.parse("10.0.0.0/8") in trie
        assert Prefix.parse("10.0.0.0/9") not in trie

    def test_contains_none_value(self):
        t = PrefixTrie()
        t.insert(Prefix.parse("10.0.0.0/8"), None)
        assert Prefix.parse("10.0.0.0/8") in t

    def test_overwrite_keeps_size(self, trie):
        trie.insert(Prefix.parse("10.0.0.0/8"), "TEN")
        assert len(trie) == 3
        assert trie.get(Prefix.parse("10.0.0.0/8")) == "TEN"

    def test_remove(self, trie):
        assert trie.remove(Prefix.parse("10.1.0.0/16"))
        assert len(trie) == 2
        assert trie.get(Prefix.parse("10.1.0.0/16")) is None
        # Covering entry still answers LPM.
        assert trie.lookup(addr_to_int("10.1.2.3")) == "ten"

    def test_remove_missing(self, trie):
        assert not trie.remove(Prefix.parse("10.9.0.0/16"))
        assert len(trie) == 3

    def test_default_route(self):
        t = PrefixTrie()
        t.insert(Prefix.parse("0.0.0.0/0"), "default")
        assert t.lookup(addr_to_int("8.8.8.8")) == "default"


class TestLongestMatch:
    def test_most_specific_wins(self, trie):
        assert trie.lookup(addr_to_int("10.1.2.3")) == "ten-one"
        assert trie.lookup(addr_to_int("10.2.2.3")) == "ten"

    def test_no_match(self, trie):
        assert trie.lookup(addr_to_int("8.8.8.8")) is None
        assert trie.longest_match(addr_to_int("8.8.8.8")) is None

    def test_match_returns_prefix(self, trie):
        prefix, value = trie.longest_match(addr_to_int("192.0.2.200"))
        assert prefix == Prefix.parse("192.0.2.0/24")
        assert value == "testnet"

    def test_covers(self, trie):
        assert trie.covers(addr_to_int("10.255.255.255"))
        assert not trie.covers(addr_to_int("11.0.0.0"))


class TestIteration:
    def test_items_in_order(self, trie):
        keys = [p for p, _v in trie.items()]
        assert keys == sorted(keys)

    def test_prefixes_match_inserted(self, trie):
        assert set(trie.prefixes()) == {
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("10.1.0.0/16"),
            Prefix.parse("192.0.2.0/24"),
        }


@st.composite
def prefix_strategy(draw):
    length = draw(st.integers(min_value=8, max_value=32))
    top = draw(st.integers(min_value=0, max_value=(1 << length) - 1))
    return Prefix(top << (32 - length), length)


class TestPropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(prefix_strategy(), min_size=1, max_size=40, unique=True))
    def test_lpm_agrees_with_linear_scan(self, prefix_list):
        trie = PrefixTrie()
        for index, prefix in enumerate(prefix_list):
            trie.insert(prefix, index)
        probes = [p.first for p in prefix_list] + [p.last for p in prefix_list]
        for addr in probes:
            expected = None
            for index, prefix in enumerate(prefix_list):
                if prefix.contains(addr) and (
                    expected is None
                    or prefix.length > prefix_list[expected].length
                ):
                    expected = index
            assert trie.lookup(addr) == expected

    @settings(max_examples=50, deadline=None)
    @given(st.lists(prefix_strategy(), min_size=1, max_size=40, unique=True))
    def test_size_matches_unique_inserts(self, prefix_list):
        trie = PrefixTrie()
        for prefix in prefix_list:
            trie.insert(prefix, 0)
        assert len(trie) == len(set(prefix_list))
