"""Kill/resume crash-recovery: SIGKILL children, bit-equal resumption.

Each scenario SIGKILLs a real child process running
:func:`repro.testing.recovery.run_watch` at an exact fault-hook point
(mid-window, mid-checkpoint, mid-checkpoint with a torn temporary),
resumes in a fresh child, and asserts over the concatenated per-window
ledgers:

* every window index appears **exactly once** across the killed run
  and its resumption (exactly-once emission);
* the concatenation is **bit-equal** (flows, counts, label digests) to
  the ledger of one uninterrupted run over the same stream.

Every scenario runs under both the ``fork`` and ``spawn``
multiprocessing start methods — spawn children rebuild the world from
a bare import, proving the driver depends on nothing inherited.
"""

from __future__ import annotations

import multiprocessing as mp
import os

import pytest

from repro.testing import DurabilityFaultPlan, DurabilityFaultSpec
from repro.testing.recovery import ledger_rows, run_watch

SEED = 23
TICKS = 120

pytestmark = pytest.mark.skipif(
    os.environ.get("MP_START_METHOD", "") not in ("", "fork", "spawn"),
    reason="unknown MP_START_METHOD",
)

START_METHODS = ("fork", "spawn")


def run_child(method, checkpoint_dir, ledger, *, resume=False, plan=None,
              checkpoint_every=1):
    """Run one watch in a child process; returns its exit code."""
    ctx = mp.get_context(method)
    process = ctx.Process(
        target=run_watch,
        args=(str(checkpoint_dir), str(ledger)),
        kwargs=dict(
            seed=SEED,
            n_ticks=TICKS,
            checkpoint_every=checkpoint_every,
            resume=resume,
            fault_hook=plan,
        ),
    )
    process.start()
    process.join(timeout=180)
    assert process.exitcode is not None, "child did not finish"
    return process.exitcode


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The uninterrupted run's ledger (computed once per module)."""
    base = tmp_path_factory.mktemp("reference")
    run_watch(base / "ckpt", base / "ledger.jsonl", seed=SEED, n_ticks=TICKS)
    rows = ledger_rows(base / "ledger.jsonl")
    assert rows, "reference run emitted nothing"
    return rows


def assert_exactly_once_parity(ledger, reference):
    rows = ledger_rows(ledger)
    indices = [row["window"] for row in rows]
    assert len(indices) == len(set(indices)), (
        f"windows emitted more than once: {indices}"
    )
    assert rows == reference, "resumed ledger is not bit-equal"


@pytest.mark.parametrize("method", START_METHODS)
class TestKillResume:
    def test_sigkill_mid_window(self, method, tmp_path, reference):
        """SIGKILL after the 2nd emission, before its cursor lands."""
        ckpt, ledger = tmp_path / "ckpt", tmp_path / "ledger.jsonl"
        plan = DurabilityFaultPlan(
            (DurabilityFaultSpec("kill", "window_emitted", occurrence=3),)
        )
        code = run_child(method, ckpt, ledger, plan=plan)
        assert code == -9  # actually SIGKILLed
        assert len(ledger_rows(ledger)) < len(reference)
        assert run_child(method, ckpt, ledger, resume=True) == 0
        assert_exactly_once_parity(ledger, reference)

    def test_sigkill_mid_checkpoint(self, method, tmp_path, reference):
        """SIGKILL between pickling the state and writing the file."""
        ckpt, ledger = tmp_path / "ckpt", tmp_path / "ledger.jsonl"
        plan = DurabilityFaultPlan(
            (DurabilityFaultSpec("kill", "checkpoint_payload", occurrence=2),)
        )
        code = run_child(method, ckpt, ledger, plan=plan)
        assert code == -9
        assert run_child(method, ckpt, ledger, resume=True) == 0
        assert_exactly_once_parity(ledger, reference)

    def test_sigkill_with_torn_checkpoint_tmp(
        self, method, tmp_path, reference
    ):
        """Death mid-tmp-write: a torn ``*.tmp`` litters the dir."""
        ckpt, ledger = tmp_path / "ckpt", tmp_path / "ledger.jsonl"
        torn = ckpt / "checkpoint-999999999999.ckpt.424242.tmp"
        plan = DurabilityFaultPlan(
            (
                DurabilityFaultSpec(
                    "torn_write",
                    "checkpoint_payload",
                    occurrence=2,
                    tear_path=str(torn),
                    tear_bytes=512,
                ),
            )
        )
        code = run_child(method, ckpt, ledger, plan=plan)
        assert code == -9
        assert torn.exists()  # the debris really is on disk
        assert run_child(method, ckpt, ledger, resume=True) == 0
        assert_exactly_once_parity(ledger, reference)

    def test_repeated_kill_resume_loop(self, method, tmp_path, reference):
        """Kill every run at its first emission until the stream ends.

        The CI recovery job runs this loop shape: each resumed run is
        murdered again after one more window, so every window of the
        stream crosses at least one crash/recovery boundary.
        """
        ckpt, ledger = tmp_path / "ckpt", tmp_path / "ledger.jsonl"
        plan = DurabilityFaultPlan(
            (DurabilityFaultSpec("kill", "window_emitted", occurrence=2),)
        )
        resume = False
        for _round in range(len(reference) + 2):
            code = run_child(
                method, ckpt, ledger,
                resume=resume,
                plan=DurabilityFaultPlan(plan.faults),
                checkpoint_every=2,
            )
            resume = True
            if code == 0:
                break
            assert code == -9
        else:
            pytest.fail("kill/resume loop never finished the stream")
        assert_exactly_once_parity(ledger, reference)
