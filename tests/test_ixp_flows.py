"""Tests for the columnar flow table."""

import numpy as np
import pytest

from repro.ixp.flows import (
    PROTO_TCP,
    PROTO_UDP,
    FlowBatchBuilder,
    FlowTable,
    TruthLabel,
)


def small_table(n=4, member=10):
    return FlowTable(
        src=np.arange(n, dtype=np.uint64),
        dst=np.arange(n, dtype=np.uint64) + 100,
        proto=np.full(n, PROTO_TCP),
        src_port=np.full(n, 1000),
        dst_port=np.full(n, 80),
        packets=np.arange(1, n + 1),
        bytes=np.arange(1, n + 1) * 100,
        member=np.full(n, member),
        dst_member=np.full(n, member + 1),
        time=np.arange(n) * 3600,
        truth=np.full(n, int(TruthLabel.LEGIT)),
    )


class TestConstruction:
    def test_empty(self):
        table = FlowTable.empty()
        assert len(table) == 0
        assert table.total_packets() == 0

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            FlowTable(src=np.array([1, 2]), dst=np.array([1]))

    def test_missing_columns_default_empty(self):
        table = FlowTable(src=np.array([], dtype=np.uint64))
        assert len(table) == 0

    def test_repr(self):
        assert "4 flows" in repr(small_table())


class TestOps:
    def test_concat(self):
        merged = FlowTable.concat([small_table(2), small_table(3)])
        assert len(merged) == 5

    def test_concat_skips_empty(self):
        merged = FlowTable.concat([FlowTable.empty(), small_table(2)])
        assert len(merged) == 2

    def test_concat_nothing(self):
        assert len(FlowTable.concat([])) == 0

    def test_select_mask(self):
        table = small_table(4)
        subset = table.select(table.packets > 2)
        assert len(subset) == 2
        assert subset.packets.tolist() == [3, 4]

    def test_select_indices(self):
        table = small_table(4)
        subset = table.select(np.array([0, 3]))
        assert subset.packets.tolist() == [1, 4]

    def test_totals(self):
        table = small_table(4)
        assert table.total_packets() == 10
        assert table.total_bytes() == 1000

    def test_members(self):
        merged = FlowTable.concat([small_table(2, member=1), small_table(2, member=2)])
        assert merged.members().tolist() == [1, 2]

    def test_sort_by_time(self):
        table = small_table(4).select(np.array([3, 1, 0, 2]))
        ordered = table.sort_by_time()
        assert list(ordered.time) == sorted(table.time)

    def test_mean_packet_sizes(self):
        table = small_table(3)
        assert table.mean_packet_sizes().tolist() == [100.0, 100.0, 100.0]


class TestBuilder:
    def test_add_rows(self):
        builder = FlowBatchBuilder()
        builder.add(1, 2, PROTO_UDP, 123, 456, 5, 500, 10, 11, 99, TruthLabel.STRAY_NAT)
        builder.add(3, 4, PROTO_TCP, 80, 81, 1, 40, 12, 13, 100, TruthLabel.LEGIT)
        table = builder.build()
        assert len(builder) == 2
        assert len(table) == 2
        assert table.src.tolist() == [1, 3]
        assert table.truth.tolist() == [
            int(TruthLabel.STRAY_NAT),
            int(TruthLabel.LEGIT),
        ]

    def test_empty_builder(self):
        assert len(FlowBatchBuilder().build()) == 0
