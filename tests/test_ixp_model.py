"""Tests for IXP member selection and packet sampling."""

import numpy as np
import pytest

from repro.ixp.model import IXP, IXPMember, select_members
from repro.ixp.sampling import PacketSampler
from repro.topology.generator import TopologyConfig, generate_topology


@pytest.fixture(scope="module")
def topo():
    return generate_topology(TopologyConfig(n_ases=300, seed=17))


class TestSelectMembers:
    def test_member_count(self, topo, rng):
        ixp = select_members(topo, rng, 80)
        assert len(ixp) == 80

    def test_members_are_real_ases(self, topo, rng):
        ixp = select_members(topo, rng, 80)
        for asn in ixp.member_asns:
            assert asn in topo

    def test_cannot_exceed_population(self, topo, rng):
        ixp = select_members(topo, rng, 10_000)
        assert len(ixp) == len(topo)

    def test_heavy_tailed_weights(self, topo, rng):
        ixp = select_members(topo, rng, 150)
        weights = ixp.traffic_weights()
        assert weights.max() / np.median(weights) > 10

    def test_transit_members_have_customers(self, topo, rng):
        ixp = select_members(topo, rng, 150)
        transit = [m for m in ixp.members.values() if m.transits_via_ixp]
        assert transit
        for member in transit:
            assert len(topo.node(member.asn).customers) >= 3

    def test_route_server_participation(self, topo, rng):
        ixp = select_members(topo, rng, 100, rs_participation=0.5)
        assert len(ixp.route_server) == 50

    def test_member_accessor(self, topo, rng):
        ixp = select_members(topo, rng, 20)
        asn = ixp.member_asns[0]
        assert ixp.member(asn).asn == asn
        assert asn in ixp


class TestPacketSampler:
    def test_expected_rate(self, rng):
        sampler = PacketSampler(rng, rate=100)
        total = sum(sampler.sampled_count(10_000) for _ in range(200))
        # Mean = 100 per draw; 200 draws → ~20000 ± noise.
        assert 17_000 < total < 23_000

    def test_vectorised(self, rng):
        sampler = PacketSampler(rng, rate=10)
        counts = sampler.sampled_counts(np.full(1000, 100.0))
        assert 8.0 < counts.mean() < 12.0

    def test_zero_packets(self, rng):
        sampler = PacketSampler(rng)
        assert sampler.sampled_count(0) == 0

    def test_extrapolate(self, rng):
        sampler = PacketSampler(rng, rate=10_000)
        assert sampler.extrapolate(5) == 50_000

    def test_rejects_bad_rate(self, rng):
        with pytest.raises(ValueError):
            PacketSampler(rng, rate=0)
