"""Property tests for route propagation on generated topologies.

The micro-topology tests pin exact paths; these check the structural
guarantees (valley-freeness, reachability, export discipline) across
randomly generated topologies and origins.
"""

import numpy as np
import pytest

from repro.bgp.propagation import RoutePropagator, RouteType
from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.model import Relationship


@pytest.fixture(scope="module", params=[101, 202, 303])
def world(request):
    topo = generate_topology(
        TopologyConfig(n_ases=150, n_tier1=5, seed=request.param)
    )
    return topo, RoutePropagator(topo)


def _slope(topo, left, right):
    """+1 uphill, -1 downhill, 0 peer, None sibling (allowed anywhere —
    sibling links are mutual transit in Gao's valley-free model)."""
    rel = topo.relationship(left, right)
    if rel is Relationship.CUSTOMER_OF:
        return +1
    if rel is Relationship.PROVIDER_OF:
        return -1
    if rel is Relationship.PEER:
        return 0
    if rel is Relationship.SIBLING:
        return None
    raise AssertionError(f"path uses non-existent link {left}-{right}")


class TestPropagationProperties:
    def test_full_reachability(self, world):
        topo, propagator = world
        rng = np.random.default_rng(0)
        for origin in rng.choice(sorted(topo.ases), size=12, replace=False):
            outcome = propagator.propagate(int(origin))
            unreached = [
                asn for asn in topo.ases if not outcome.has_route(asn)
            ]
            assert not unreached

    def test_valley_freeness(self, world):
        topo, propagator = world
        rng = np.random.default_rng(1)
        for origin in rng.choice(sorted(topo.ases), size=8, replace=False):
            outcome = propagator.propagate(int(origin))
            for asn in rng.choice(sorted(topo.ases), size=25, replace=False):
                path = list(reversed(outcome.path_from(int(asn))))
                slopes = [
                    _slope(topo, a, b)
                    for a, b in zip(path, path[1:])
                ]
                # Sibling hops are wildcard transit; drop them, then
                # the remainder must be uphill*, ≤1 peer hop, downhill*.
                effective = [s for s in slopes if s is not None]
                seen_non_up = False
                peer_hops = 0
                for slope in effective:
                    if slope == 0:
                        peer_hops += 1
                    if slope != 1:
                        seen_non_up = True
                    else:
                        assert not seen_non_up, f"valley in {path}"
                assert peer_hops <= 1

    def test_paths_simple(self, world):
        """No AS repeats within a best path (loop freedom)."""
        topo, propagator = world
        rng = np.random.default_rng(2)
        for origin in rng.choice(sorted(topo.ases), size=8, replace=False):
            outcome = propagator.propagate(int(origin))
            for asn in topo.ases:
                path = outcome.path_from(asn)
                assert len(path) == len(set(path))

    def test_peer_routes_only_one_peer_hop(self, world):
        topo, propagator = world
        rng = np.random.default_rng(3)
        for origin in rng.choice(sorted(topo.ases), size=6, replace=False):
            outcome = propagator.propagate(int(origin))
            for asn in topo.ases:
                path = list(reversed(outcome.path_from(asn)))
                peer_hops = sum(
                    1
                    for a, b in zip(path, path[1:])
                    if topo.relationship(a, b) is Relationship.PEER
                )
                assert peer_hops <= 1

    def test_customer_routes_shortest_among_uphill(self, world):
        """Customer-learned routes use a shortest uphill path."""
        topo, propagator = world
        rng = np.random.default_rng(4)
        origin = int(rng.choice(sorted(topo.ases)))
        outcome = propagator.propagate(origin)
        # BFS distances along uphill edges from origin.
        from collections import deque

        dist = {origin: 0}
        queue = deque([origin])
        while queue:
            current = queue.popleft()
            node = topo.node(current)
            for upstream in node.providers | node.siblings:
                if upstream not in dist:
                    dist[upstream] = dist[current] + 1
                    queue.append(upstream)
        for asn, distance in dist.items():
            if outcome.route_type(asn) is RouteType.CUSTOMER:
                path = outcome.path_from(asn)
                assert len(path) - 1 == distance
