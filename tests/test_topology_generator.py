"""Tests for the synthetic topology generator."""

import numpy as np
import pytest

from repro.datasets.bogons import bogon_prefix_set
from repro.net.prefixset import PrefixSet
from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.model import BusinessType, Relationship


@pytest.fixture(scope="module")
def topo():
    return generate_topology(TopologyConfig(n_ases=400, seed=3))


class TestStructure:
    def test_as_count(self, topo):
        assert len(topo) == 400

    def test_tier1_clique(self, topo):
        tier1 = sorted(topo.tier1_asns())
        assert len(tier1) == TopologyConfig().n_tier1
        for a in tier1:
            for b in tier1:
                if a < b:
                    assert topo.relationship(a, b) is Relationship.PEER

    def test_everyone_but_tier1_has_a_provider(self, topo):
        for asn, node in topo.ases.items():
            if node.tier != 1:
                assert node.providers, f"AS{asn} has no provider"

    def test_tier1_has_no_providers(self, topo):
        for asn in topo.tier1_asns():
            assert not topo.node(asn).providers

    def test_no_self_links(self, topo):
        for asn, node in topo.ases.items():
            assert asn not in node.neighbors

    def test_relationships_are_symmetricly_wired(self, topo):
        for a, b, rel in topo.all_links():
            assert topo.relationship(b, a) is rel.inverse()

    def test_heavy_tailed_cones(self, topo):
        sizes = sorted(
            len(topo.customer_cone(asn)) for asn in topo.ases
        )
        # Most ASes are stubs, the top AS reaches a large share.
        assert sizes[len(sizes) // 2] <= 2
        assert sizes[-1] > len(topo) * 0.2

    def test_edge_business_mix(self, topo):
        edge_types = [
            node.business_type
            for node in topo.ases.values()
            if node.tier == 3
        ]
        # All four edge types present in a 400-AS world.
        assert {
            BusinessType.ISP,
            BusinessType.HOSTING,
            BusinessType.CONTENT,
            BusinessType.OTHER,
        } <= set(edge_types)

    def test_too_small_config_rejected(self):
        with pytest.raises(ValueError):
            generate_topology(TopologyConfig(n_ases=5, n_tier1=10))


class TestDeterminism:
    def test_same_seed_same_topology(self):
        a = generate_topology(TopologyConfig(n_ases=120, seed=9))
        b = generate_topology(TopologyConfig(n_ases=120, seed=9))
        assert {n: sorted(v.providers) for n, v in a.ases.items()} == {
            n: sorted(v.providers) for n, v in b.ases.items()
        }
        assert a.announced_prefixes() == b.announced_prefixes()

    def test_different_seed_differs(self):
        a = generate_topology(TopologyConfig(n_ases=120, seed=9))
        b = generate_topology(TopologyConfig(n_ases=120, seed=10))
        assert a.announced_prefixes() != b.announced_prefixes()


class TestAddressPlan:
    def test_everyone_has_prefixes(self, topo):
        for asn, node in topo.ases.items():
            assert node.prefixes, f"AS{asn} has no prefixes"

    def test_prefixes_disjoint_across_ases(self, topo):
        total = 0
        all_prefixes = []
        for node in topo.ases.values():
            all_prefixes.extend(node.prefixes)
            all_prefixes.extend(node.dark_prefixes)
            total += sum(
                p.num_addresses for p in node.prefixes + node.dark_prefixes
            )
        merged = PrefixSet(all_prefixes)
        assert merged.num_addresses == total  # no overlap anywhere

    def test_prefixes_avoid_bogon_space(self, topo):
        bogons = bogon_prefix_set()
        for node in topo.ases.values():
            for prefix in node.prefixes:
                assert not (PrefixSet([prefix]) & bogons)

    def test_some_dark_space_exists(self, topo):
        assert any(node.dark_prefixes for node in topo.ases.values())


class TestSpecialStructures:
    def test_multi_as_orgs_exist(self, topo):
        multi = [org for org in topo.orgs.values() if len(org.asns) > 1]
        assert multi
        hidden = [org for org in multi if not org.in_as2org]
        assert hidden  # some orgs are invisible to AS2Org

    def test_pa_assignments_carved_from_provider(self, topo):
        assert topo.pa_assignments
        for customer, provider, prefix in topo.pa_assignments:
            assert provider in topo.node(customer).providers
            assert any(
                parent.covers(prefix) for parent in topo.node(provider).prefixes
            )

    def test_partial_transit_links_are_peerings(self, topo):
        assert topo.partial_transit
        for carrier, peer in topo.partial_transit:
            assert topo.relationship(carrier, peer) is Relationship.PEER

    def test_backup_transit_is_invisible(self, topo):
        assert topo.backup_transit
        for provider, customer in topo.backup_transit:
            # Not wired into the relationship sets → invisible to BGP.
            assert topo.relationship(provider, customer) is None

    def test_transit_links_numbered(self, topo):
        transit_links = [
            (a, b)
            for a, b, rel in topo.all_links()
            if rel in (Relationship.CUSTOMER_OF, Relationship.PROVIDER_OF)
        ]
        # Most (not necessarily all) transit links get a /30.
        assert len(topo.link_addresses) > 0.8 * len(transit_links)
        for (provider, customer), (p_addr, c_addr) in topo.link_addresses.items():
            assert abs(p_addr - c_addr) == 1  # same /30, .1 and .2

    def test_tunnels_reference_real_ases(self, topo):
        for carrier, origin in topo.tunnels:
            assert carrier in topo
            assert origin in topo
