"""Tests for pool sampling, regular traffic, and stray generators."""

import numpy as np
import pytest

from repro.datasets.bogons import bogon_prefix_set
from repro.ixp.flows import PROTO_ICMP, TruthLabel
from repro.net.prefix import Prefix
from repro.net.prefixset import PrefixSet
from repro.traffic.diurnal import DiurnalModel
from repro.traffic.forwarding import SourceEntry, SourceKind, SourcePool
from repro.traffic.poolsampler import PoolAddressSampler
from repro.traffic.regular import generate_regular, member_flow_counts
from repro.traffic.stray import (
    generate_nat_leaks,
    generate_router_strays,
    member_router_addresses,
)
from repro.util.timeconst import WEEK


def make_pool(member=10):
    return SourcePool(
        member=member,
        entries=[
            SourceEntry(member, (Prefix.parse("60.0.0.0/16"),), SourceKind.OWN, 1.0),
            SourceEntry(
                77, (Prefix.parse("61.0.0.0/16"),), SourceKind.CUSTOMER, 0.5
            ),
            SourceEntry(
                88, (Prefix.parse("62.0.0.0/24"),), SourceKind.TUNNEL, 0.3,
                hidden=True,
            ),
        ],
    )


class TestPoolSampler:
    def test_sources_within_entries(self, rng):
        sampler = PoolAddressSampler()
        addrs, origins, hidden = sampler.sample(rng, make_pool(), 2000)
        space = PrefixSet(
            [
                Prefix.parse("60.0.0.0/16"),
                Prefix.parse("61.0.0.0/16"),
                Prefix.parse("62.0.0.0/24"),
            ]
        )
        assert space.contains_many(addrs).all()
        assert set(np.unique(origins)) <= {10, 77, 88}

    def test_hidden_flag_tracks_entry(self, rng):
        sampler = PoolAddressSampler()
        addrs, origins, hidden = sampler.sample(rng, make_pool(), 2000)
        assert (hidden == (origins == 88)).all()

    def test_visible_only_excludes_hidden(self, rng):
        sampler = PoolAddressSampler()
        _addrs, origins, hidden = sampler.sample(
            rng, make_pool(), 1000, visible_only=True
        )
        assert not hidden.any()
        assert 88 not in origins

    def test_empty_pool_rejected(self, rng):
        sampler = PoolAddressSampler()
        with pytest.raises(ValueError):
            sampler.sample(rng, SourcePool(member=1, entries=[]), 5)

    def test_weights_influence_mix(self, rng):
        sampler = PoolAddressSampler()
        _a, origins, _h = sampler.sample(rng, make_pool(), 4000)
        own_share = (origins == 10).mean()
        tunnel_share = (origins == 88).mean()
        assert own_share > tunnel_share  # weight 1.0·√65536 vs 0.3·√256


class TestRegularGeneration:
    def test_member_flow_counts_sum(self, tiny_world, rng):
        counts = member_flow_counts(rng, tiny_world.ixp, 5000)
        assert sum(counts.values()) == 5000
        assert set(counts) <= set(tiny_world.ixp.member_asns)

    def test_generate_regular_columns(self, tiny_world, rng):
        from repro.traffic.forwarding import build_source_pools

        members = list(tiny_world.ixp.member_asns)
        pools = build_source_pools(tiny_world.topo, members, set())
        diurnal = DiurnalModel(rng, window_seconds=WEEK)
        table = generate_regular(rng, tiny_world.ixp, pools, diurnal, 3000)
        assert 0 < len(table) <= 3000
        assert (table.packets >= 1).all()
        assert (table.time < WEEK).all()
        assert not bogon_prefix_set().contains_many(table.src).any()
        # Destination members differ from the ingress member.
        assert (table.dst_member != table.member).all()

    def test_truth_labels_split_hidden(self, tiny_world, rng):
        from repro.traffic.forwarding import build_source_pools

        members = list(tiny_world.ixp.member_asns)
        pools = build_source_pools(tiny_world.topo, members, set())
        diurnal = DiurnalModel(rng, window_seconds=WEEK)
        table = generate_regular(rng, tiny_world.ixp, pools, diurnal, 8000)
        labels = set(int(t) for t in np.unique(table.truth))
        assert labels <= {
            int(TruthLabel.LEGIT),
            int(TruthLabel.LEGIT_HIDDEN_REL),
        }


class TestStrayGeneration:
    def test_member_router_addresses(self, tiny_world):
        topo = tiny_world.topo
        some_link = next(iter(topo.link_addresses))
        provider, customer = some_link
        p_addr, c_addr = topo.link_addresses[some_link]
        assert p_addr in member_router_addresses(topo, provider)
        assert c_addr in member_router_addresses(topo, customer)

    def test_nat_leaks_shape(self, tiny_world, rng):
        from repro.traffic.forwarding import build_source_pools
        from repro.traffic.poolsampler import PoolAddressSampler

        members = list(tiny_world.ixp.member_asns)
        pools = build_source_pools(tiny_world.topo, members, set())
        diurnal = DiurnalModel(rng, window_seconds=WEEK)
        table = generate_nat_leaks(
            rng, members[0], 300, diurnal, pools, PoolAddressSampler(),
            np.array(members[1:4]),
        )
        assert len(table) == 300
        assert bogon_prefix_set().contains_many(table.src).all()
        assert (table.truth == int(TruthLabel.STRAY_NAT)).all()
        assert (table.packets == 1).all()

    def test_nat_leaks_zero_rows(self, tiny_world, rng):
        from repro.traffic.forwarding import build_source_pools
        from repro.traffic.poolsampler import PoolAddressSampler

        members = list(tiny_world.ixp.member_asns)
        pools = build_source_pools(tiny_world.topo, members, set())
        diurnal = DiurnalModel(rng, window_seconds=WEEK)
        table = generate_nat_leaks(
            rng, members[0], 0, diurnal, pools, PoolAddressSampler(),
            np.array(members[1:2]),
        )
        assert len(table) == 0

    def test_router_strays_sources_are_interfaces(self, tiny_world, rng):
        from repro.traffic.forwarding import build_source_pools
        from repro.traffic.poolsampler import PoolAddressSampler

        topo = tiny_world.topo
        member = next(
            asn
            for asn in tiny_world.ixp.member_asns
            if member_router_addresses(topo, asn)
        )
        members = list(tiny_world.ixp.member_asns)
        pools = build_source_pools(topo, members, set())
        table = generate_router_strays(
            rng, member, 200, topo, pools, PoolAddressSampler(),
            np.array(members[:3]), WEEK,
        )
        assert len(table) == 200
        valid_addrs = set(member_router_addresses(topo, member))
        assert set(int(s) for s in np.unique(table.src)) <= valid_addrs
        assert (table.proto == PROTO_ICMP).mean() > 0.6

    def test_router_strays_without_links(self, micro_topology, rng):
        from repro.traffic.poolsampler import PoolAddressSampler

        table = generate_router_strays(
            rng, 5, 50, micro_topology, {}, PoolAddressSampler(),
            np.array([1]), WEEK,
        )
        assert len(table) == 0  # member has no numbered links
