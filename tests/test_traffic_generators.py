"""Tests for the traffic building blocks (apps, diurnal, addressing)."""

import numpy as np
import pytest

from repro.datasets.bogons import bogon_prefix_set
from repro.net.prefix import Prefix
from repro.net.prefixset import PrefixSet
from repro.traffic.addressing import (
    BogonSampler,
    OriginAddressSampler,
    build_unrouted_sampler,
    routable_space,
    unrouted_space,
)
from repro.traffic.apps import clamp_packet_size, draw_regular_app, ephemeral_port
from repro.traffic.diurnal import DiurnalModel, uniform_times
from repro.traffic.regular import draw_app_columns
from repro.util.timeconst import DAY, HOUR, WEEK


class TestApps:
    def test_draw_regular_app_fields(self, rng):
        for _ in range(50):
            spec = draw_regular_app(rng)
            assert spec.proto in (6, 17)
            assert 0 < spec.src_port < 65536
            assert 0 < spec.dst_port < 65536
            assert spec.mean_sampled_packets >= 1.0

    def test_ephemeral_port_range(self, rng):
        for _ in range(100):
            assert 49152 <= ephemeral_port(rng) < 65536

    def test_clamp(self):
        assert clamp_packet_size(10) == 40
        assert clamp_packet_size(9999) == 1500
        assert clamp_packet_size(1000.4) == 1000

    def test_draw_app_columns_shapes(self, rng):
        proto, sport, dport, packets, nbytes = draw_app_columns(rng, 500)
        assert proto.shape == (500,)
        assert (packets >= 1).all()
        assert (nbytes >= 40 * packets).all()
        assert (nbytes <= 1500 * packets).all()

    def test_bimodal_sizes(self, rng):
        _p, _s, _d, packets, nbytes = draw_app_columns(rng, 8000)
        sizes = nbytes / packets
        small = (sizes < 150).mean()
        large = (sizes > 1000).mean()
        assert small > 0.2 and large > 0.2

    def test_web_ports_present(self, rng):
        proto, sport, dport, _p, _b = draw_app_columns(rng, 4000)
        tcp = proto == 6
        web_dst = np.isin(dport[tcp], (80, 443)).mean()
        assert web_dst > 0.2


class TestDiurnal:
    def test_weights_normalised(self, rng):
        model = DiurnalModel(rng, window_seconds=WEEK)
        assert model.hourly_weights.sum() == pytest.approx(1.0)
        assert model.hourly_weights.size == 7 * 24

    def test_day_night_contrast(self, rng):
        model = DiurnalModel(rng, window_seconds=2 * WEEK, noise=0.0)
        weights = model.hourly_weights
        days = weights.reshape(-1, 24)
        profile = days.mean(axis=0)
        assert profile.max() / profile.min() > 1.8

    def test_sample_times_in_window(self, rng):
        model = DiurnalModel(rng, window_seconds=WEEK)
        times = model.sample_times(rng, 5000)
        assert (times >= 0).all()
        assert (times < WEEK).all()

    def test_samples_follow_pattern(self, rng):
        model = DiurnalModel(rng, window_seconds=WEEK, day_night_ratio=4.0)
        times = model.sample_times(rng, 40_000)
        hour_of_day = (times % DAY) // HOUR
        evening = np.isin(hour_of_day, (19, 20, 21)).mean()
        night = np.isin(hour_of_day, (3, 4, 5)).mean()
        assert evening > 2 * night

    def test_uniform_times(self, rng):
        times = uniform_times(rng, 100, start=50, duration=10)
        assert (times >= 50).all() and (times < 60).all()

    def test_uniform_times_zero_duration(self, rng):
        assert (uniform_times(rng, 5, 7, 0) == 7).all()


class TestAddressing:
    def test_routable_space_excludes_bogons(self):
        space = routable_space()
        bogons = bogon_prefix_set()
        assert not (space & bogons)
        share = space.num_addresses / 2**32
        assert 0.85 < share < 0.88  # paper: 86.2%

    def test_unrouted_space(self):
        routed = PrefixSet([Prefix.parse("10.0.0.0/8")])  # bogon; ignored
        routed = PrefixSet([Prefix.parse("1.0.0.0/8")])
        space = unrouted_space(routed)
        assert Prefix.parse("1.0.0.0/8").first not in space
        assert Prefix.parse("2.0.0.0/8").first in space
        assert Prefix.parse("10.0.0.0/8").first not in space  # bogon

    def test_unrouted_sampler_avoids_routed_and_bogons(self, rng):
        routed = PrefixSet([Prefix.parse("1.0.0.0/8"), Prefix.parse("8.0.0.0/8")])
        sampler = build_unrouted_sampler(routed, rng)
        addrs = sampler.sample(rng, 3000)
        assert not routed.contains_many(addrs).any()
        assert not bogon_prefix_set().contains_many(addrs).any()

    def test_bogon_sampler_all_bogons(self, rng):
        sampler = BogonSampler()
        addrs = sampler.sample(rng, 3000)
        assert bogon_prefix_set().contains_many(addrs).all()

    def test_bogon_sampler_concentrates_private(self, rng):
        addrs = BogonSampler().sample(rng, 5000)
        first_octet = (addrs >> np.uint64(24)).astype(int)
        private = np.isin(first_octet, (10, 192, 172, 100)).mean()
        assert private > 0.5

    def test_origin_sampler(self, rng):
        sampler = OriginAddressSampler(
            {1: [Prefix.parse("9.0.0.0/16")], 2: [Prefix.parse("11.0.0.0/16")]}
        )
        addrs = sampler.sample(rng, 1, 200)
        assert ((addrs >> np.uint64(16)) == (9 << 8)).all()
        assert sampler.known_origins() == [1, 2]
        with pytest.raises(KeyError):
            sampler.sample(rng, 3, 1)
