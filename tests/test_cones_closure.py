"""Tests for the SCC-condensed reachability closure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cones.closure import ReachabilityClosure


class TestBasics:
    def test_reflexive(self):
        closure = ReachabilityClosure(3, [])
        for node in range(3):
            assert closure.reaches(node, node)
            assert closure.reach_count(node) == 1

    def test_chain(self):
        closure = ReachabilityClosure(4, [(0, 1), (1, 2), (2, 3)])
        assert closure.reaches(0, 3)
        assert not closure.reaches(3, 0)
        assert closure.reach_count(0) == 4
        assert closure.reach_count(3) == 1

    def test_diamond(self):
        closure = ReachabilityClosure(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert closure.reachable_set(0) == {0, 1, 2, 3}
        assert closure.reachable_set(1) == {1, 3}

    def test_cycle_collapses(self):
        closure = ReachabilityClosure(4, [(0, 1), (1, 2), (2, 0), (2, 3)])
        for node in (0, 1, 2):
            assert closure.reachable_set(node) == {0, 1, 2, 3}
        assert closure.reachable_set(3) == {3}

    def test_self_loops_ignored(self):
        closure = ReachabilityClosure(2, [(0, 0), (0, 1)])
        assert closure.reachable_set(0) == {0, 1}

    def test_unpacked_row_shape(self):
        closure = ReachabilityClosure(11, [(0, 10)])
        row = closure.unpacked_row(0)
        assert row.shape == (11,)
        assert row[10] and row[0] and not row[5]

    def test_counts_vector(self):
        closure = ReachabilityClosure(3, [(0, 1)])
        assert closure.counts().tolist() == [2, 1, 1]

    def test_weighted_counts(self):
        closure = ReachabilityClosure(3, [(0, 1), (1, 2)])
        weights = np.array([1.0, 10.0, 100.0])
        assert closure.weighted_counts(weights).tolist() == [111.0, 110.0, 100.0]

    def test_empty_graph(self):
        closure = ReachabilityClosure(0, [])
        assert closure.counts().size == 0


def _random_graph(draw, max_n=14):
    n = draw(st.integers(min_value=1, max_value=max_n))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=40,
        )
    )
    return n, edges


@st.composite
def graphs(draw):
    return _random_graph(draw)


class TestAgainstBruteForce:
    @settings(max_examples=80, deadline=None)
    @given(graphs())
    def test_matches_dfs_reachability(self, graph):
        n, edges = graph
        closure = ReachabilityClosure(n, edges)
        adjacency = [[] for _ in range(n)]
        for src, dst in edges:
            adjacency[src].append(dst)
        for start in range(n):
            expected = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for child in adjacency[node]:
                    if child not in expected:
                        expected.add(child)
                        stack.append(child)
            assert closure.reachable_set(start) == expected
            assert closure.reach_count(start) == len(expected)

    @settings(max_examples=40, deadline=None)
    @given(graphs())
    def test_counts_consistent_with_rows(self, graph):
        n, edges = graph
        closure = ReachabilityClosure(n, edges)
        counts = closure.counts()
        for node in range(n):
            assert counts[node] == len(closure.reachable_set(node))
