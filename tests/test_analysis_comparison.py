"""Tests for cross-approach comparison and weekly stability."""

import pytest

from repro.analysis.comparison import compare_approaches, weekly_stability
from repro.util.timeconst import MEASUREMENT_SECONDS


class TestCompareApproaches:
    @pytest.fixture(scope="class")
    def comparison(self, tiny_world):
        return compare_approaches(
            tiny_world.result, ["naive+orgs", "cc+orgs", "full+orgs"]
        )

    def test_all_pairs_present(self, comparison):
        assert len(comparison.overlaps) == 3

    def test_jaccard_bounded(self, comparison):
        for item in comparison.overlaps.values():
            assert 0.0 <= item.jaccard() <= 1.0

    def test_intersection_bounded_by_parts(self, comparison):
        for item in comparison.overlaps.values():
            assert item.packets_both <= min(item.packets_a, item.packets_b)

    def test_symmetric_access(self, comparison):
        ab = comparison.overlap("naive+orgs", "cc+orgs")
        ba = comparison.overlap("cc+orgs", "naive+orgs")
        assert ab.packets_both == ba.packets_both
        assert ab.packets_a == ba.packets_b

    def test_shared_core_is_large(self, comparison):
        """The truly spoofed routed traffic is flagged by everyone, so
        pairwise containment of full in the others is high."""
        item = comparison.overlap("full+orgs", "cc+orgs")
        assert item.containment_of_a_in_b() > 0.5

    def test_member_counts(self, comparison, tiny_world):
        for name, count in comparison.member_counts.items():
            assert 0 <= count <= len(tiny_world.ixp)

    def test_render(self, comparison):
        text = comparison.render()
        assert "jaccard" in text and "members flagged" in text


class TestWeeklyStability:
    @pytest.fixture(scope="class")
    def stability(self, tiny_world):
        return weekly_stability(
            tiny_world.result, "full+orgs", MEASUREMENT_SECONDS
        )

    def test_four_weeks(self, stability):
        assert len(stability.weeks) == 4
        for values in stability.shares.values():
            assert len(values) == 4

    def test_shares_bounded(self, stability):
        for values in stability.shares.values():
            assert all(0.0 <= v <= 1.0 for v in values)

    def test_render(self, stability):
        text = stability.render()
        assert "week" in text and "bogon" in text

    def test_spread_metric(self, stability):
        assert stability.max_relative_spread("bogon") >= 0.0
