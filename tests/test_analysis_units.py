"""Unit tests for analysis helpers on the tiny world."""

import numpy as np
import pytest

from repro.analysis.fig2_cone_sizes import compute_cone_size_curves
from repro.analysis.fig4_ccdf import compute_member_share_ccdf
from repro.analysis.fig5_venn import compute_filtering_venn
from repro.analysis.fig6_scatter import compute_business_scatter
from repro.analysis.fig8_traffic import (
    compute_packet_size_cdf,
    compute_timeseries,
)
from repro.analysis.fig9_portmix import compute_port_mix
from repro.analysis.fig10_addrspace import compute_address_histograms
from repro.analysis.fig11_attacks import compute_spoofing_ratios
from repro.analysis.table1 import compute_table1, org_merge_impact
from repro.core import TrafficClass
from repro.datasets.peeringdb import build_peeringdb
from repro.util.timeconst import MEASUREMENT_SECONDS


@pytest.fixture(scope="module")
def approach():
    return "full+orgs"


class TestTable1:
    def test_columns_present(self, tiny_world):
        table = compute_table1(tiny_world.result)
        assert "bogon" in table.columns
        assert "unrouted" in table.columns
        for name in tiny_world.approaches:
            assert f"invalid {name}" in table.columns

    def test_scaling(self, tiny_world):
        table = compute_table1(tiny_world.result, sampling_rate=10_000)
        assert table.scaled_packets("bogon") == (
            table.columns["bogon"].packets * 10_000
        )

    def test_render_contains_shares(self, tiny_world):
        text = compute_table1(tiny_world.result).render()
        assert "%" in text and "bogon" in text

    def test_org_merge_reduces_invalid(self, tiny_world):
        for base, merged in (("cc", "cc+orgs"), ("full", "full+orgs")):
            impact = org_merge_impact(tiny_world.result, base, merged)
            assert 0.0 <= impact <= 1.0


class TestFig2:
    def test_containment_size_invariants(self, tiny_world):
        curves = compute_cone_size_curves(
            {
                name: tiny_world.approaches[name]
                for name in ("naive", "cc", "full", "cc+orgs", "full+orgs")
            }
        )
        assert not curves.containment_violations("naive", "full")
        assert not curves.containment_violations("cc", "full")
        assert not curves.containment_violations("cc", "cc+orgs")
        assert not curves.containment_violations("full", "full+orgs")

    def test_curves_sorted(self, tiny_world):
        curves = compute_cone_size_curves(
            {"full": tiny_world.approaches["full"]}
        )
        values = curves.curves["full"]
        assert (np.diff(values) >= 0).all()

    def test_stub_agreement(self, tiny_world):
        curves = compute_cone_size_curves(
            {
                name: tiny_world.approaches[name]
                for name in ("naive", "cc", "full")
            }
        )
        # All approaches agree on a meaningful share of (stub) ASes.
        assert curves.agreement_on_stubs() > 0.3 * len(curves.asns)

    def test_subset_of_asns(self, tiny_world):
        asns = tiny_world.rib.indexer.asns()[:20]
        curves = compute_cone_size_curves(
            {"full": tiny_world.approaches["full"]}, asns
        )
        assert len(curves.asns) == 20


class TestFig4And5:
    def test_shares_within_unit_interval(self, tiny_world, approach):
        ccdf = compute_member_share_ccdf(tiny_world.result, approach)
        for values in ccdf.shares.values():
            if values.size:
                assert values.min() > 0
                assert values.max() <= 1.0

    def test_ccdf_monotone(self, tiny_world, approach):
        ccdf = compute_member_share_ccdf(tiny_world.result, approach)
        x, y = ccdf.ccdf("bogon")
        assert (np.diff(y) <= 0).all()

    def test_venn_cells_partition_members(self, tiny_world, approach):
        venn = compute_filtering_venn(tiny_world.result, approach)
        assert sum(venn.cells.values()) == venn.total_members

    def test_venn_class_totals_match_result(self, tiny_world, approach):
        venn = compute_filtering_venn(tiny_world.result, approach)
        members = tiny_world.result.members_contributing(
            approach, TrafficClass.BOGON
        )
        assert venn.class_total_share("bogon") == pytest.approx(
            len(members) / venn.total_members
        )


class TestFig6:
    def test_points_cover_members(self, tiny_world, approach, rng):
        peeringdb = build_peeringdb(
            tiny_world.topo, rng, list(tiny_world.ixp.member_asns)
        )
        scatter = compute_business_scatter(
            tiny_world.result, approach, peeringdb, TrafficClass.BOGON
        )
        flow_members = set(
            int(m) for m in np.unique(tiny_world.scenario.flows.member)
        )
        assert {p.asn for p in scatter.points} == flow_members

    def test_shares_match_result(self, tiny_world, approach, rng):
        peeringdb = build_peeringdb(
            tiny_world.topo, rng, list(tiny_world.ixp.member_asns)
        )
        scatter = compute_business_scatter(
            tiny_world.result, approach, peeringdb, TrafficClass.INVALID
        )
        shares = tiny_world.result.member_class_shares(
            approach, TrafficClass.INVALID
        )
        for point in scatter.points[:20]:
            assert point.share == pytest.approx(shares.get(point.asn, 0.0))


class TestFig8:
    def test_size_cdf_monotone(self, tiny_world, approach):
        cdf = compute_packet_size_cdf(tiny_world.result, approach)
        _x, y = cdf.cdf("regular")
        assert (np.diff(y) >= -1e-12).all()
        assert y[-1] == pytest.approx(1.0)

    def test_share_below_bounds(self, tiny_world, approach):
        cdf = compute_packet_size_cdf(tiny_world.result, approach)
        assert cdf.share_below("regular", 40) == 0.0
        assert cdf.share_below("regular", 1501) == pytest.approx(1.0)

    def test_timeseries_conserves_packets(self, tiny_world, approach):
        series = compute_timeseries(
            tiny_world.result, approach, MEASUREMENT_SECONDS
        )
        total = sum(s.sum() for s in series.series.values())
        assert total == tiny_world.scenario.flows.packets.sum()


class TestFig9And10:
    def test_port_mix_shares_sum_to_one(self, tiny_world, approach):
        mix = compute_port_mix(tiny_world.result, approach)
        for panel in mix.shares.values():
            for class_mix in panel.values():
                if class_mix:
                    assert sum(class_mix.values()) == pytest.approx(1.0)

    def test_address_histograms_conserve_packets(self, tiny_world, approach):
        histograms = compute_address_histograms(tiny_world.result, approach)
        for name, traffic_class in (
            ("bogon", TrafficClass.BOGON),
            ("unrouted", TrafficClass.UNROUTED),
        ):
            expected = tiny_world.result.select_class(
                approach, traffic_class
            ).packets.sum()
            assert histograms.sources[name].sum() == expected
            assert histograms.destinations[name].sum() == expected

    def test_bogon_sources_in_bogon_blocks(self, tiny_world, approach):
        histograms = compute_address_histograms(tiny_world.result, approach)
        hist = histograms.sources["bogon"]
        bogon_first_octets = {10, 100, 127, 169, 172, 192, 198, 203, 0}
        bogon_first_octets |= set(range(224, 256))
        covered = sum(hist[o] for o in bogon_first_octets)
        assert covered == hist.sum()


class TestFig11a:
    def test_ratios_bounded(self, tiny_world, approach):
        ratios = compute_spoofing_ratios(
            tiny_world.result, approach, min_packets=5
        )
        for values in ratios.ratios.values():
            if values.size:
                assert values.min() > 0
                assert values.max() <= 1.0 + 1e-9

    def test_histogram_normalised(self, tiny_world, approach):
        ratios = compute_spoofing_ratios(
            tiny_world.result, approach, min_packets=5
        )
        for name, values in ratios.ratios.items():
            if values.size:
                assert ratios.histogram(name).sum() == pytest.approx(1.0)
