"""Integration tests: the paper's qualitative results must reproduce.

These assertions encode the *shapes* of the paper's findings (who
wins, by what rough factor, which signatures appear) on the ``default``
preset world. Absolute numbers differ — the substrate is a synthetic
simulator and class shares are scaled up ~10× to survive sampling at
small volume — but every directional claim the paper makes is checked
here. See EXPERIMENTS.md for the paper-vs-measured ledger.
"""

import numpy as np
import pytest

from repro.analysis.falsepositives import hunt_false_positives
from repro.analysis.fig2_cone_sizes import compute_cone_size_curves
from repro.analysis.fig4_ccdf import compute_member_share_ccdf
from repro.analysis.fig5_venn import compute_filtering_venn
from repro.analysis.fig8_traffic import (
    compute_packet_size_cdf,
    compute_timeseries,
)
from repro.analysis.fig9_portmix import compute_port_mix
from repro.analysis.fig10_addrspace import compute_address_histograms
from repro.analysis.fig11_attacks import (
    compute_amplification_timeseries,
    compute_ntp_stats,
    compute_spoofing_ratios,
)
from repro.analysis.table1 import compute_table1, org_merge_impact
from repro.core import TrafficClass, evaluate_against_truth
from repro.datasets.whois import build_whois
from repro.util.timeconst import MEASUREMENT_SECONDS

APPROACH = "full+orgs"


@pytest.fixture(scope="module")
def table1(default_world):
    return compute_table1(default_world.result)


class TestTable1Shapes:
    def test_majority_of_members_leak(self, table1):
        """Paper: 72% of members send bogon, 52% unrouted traffic."""
        assert table1.columns["bogon"].member_share > 0.5
        assert table1.columns["unrouted"].member_share > 0.35

    def test_bogon_more_members_than_unrouted(self, table1):
        assert (
            table1.columns["bogon"].members
            > table1.columns["unrouted"].members
        )

    def test_leak_traffic_is_tiny(self, table1):
        """Spoofed classes are a sliver of overall traffic."""
        for name in ("bogon", "unrouted"):
            assert table1.columns[name].packet_share < 0.02

    def test_invalid_ordering_naive_cc_full(self, table1):
        """Paper Table 1: Invalid NAIVE > Invalid CC > Invalid FULL
        (org-adjusted, packets and bytes)."""
        naive = table1.columns["invalid naive+orgs"]
        cc = table1.columns["invalid cc+orgs"]
        full = table1.columns["invalid full+orgs"]
        assert naive.packets > cc.packets > full.packets
        assert naive.bytes > cc.bytes > full.bytes

    def test_org_merge_impact_cc_exceeds_full(self, default_world):
        """Paper: org merge cuts Invalid CC by ~85% but FULL by ~15%."""
        cc_impact = org_merge_impact(default_world.result, "cc", "cc+orgs")
        full_impact = org_merge_impact(default_world.result, "full", "full+orgs")
        assert cc_impact > full_impact
        assert cc_impact > 0.2

    def test_invalid_full_members_near_unrouted(self, table1):
        """Paper: FULL flags ~54% of members, close to unrouted's 52%,
        and far fewer than NAIVE/CC."""
        full = table1.columns["invalid full+orgs"].members
        naive = table1.columns["invalid naive+orgs"].members
        cc = table1.columns["invalid cc+orgs"].members
        assert full <= naive
        assert full <= cc


class TestFig2Shapes:
    @pytest.fixture(scope="class")
    def curves(self, default_world):
        return compute_cone_size_curves(
            {
                name: default_world.approaches[name]
                for name in ("naive", "cc", "cc+orgs", "full", "full+orgs")
            }
        )

    def test_containment(self, curves):
        """Naive and CC valid spaces are contained within the Full Cone
        (size-wise per AS), org variants dominate the plain ones."""
        assert not curves.containment_violations("naive", "full")
        assert not curves.containment_violations("cc", "full")
        assert not curves.containment_violations("cc", "cc+orgs")
        assert not curves.containment_violations("full", "full+orgs")

    def test_top_full_cone_ases_cover_everything(self, curves, default_world):
        routed = default_world.rib.routed_space().slash24_equivalents
        covered = curves.full_space_asns("full+orgs", routed)
        assert covered >= 5  # "an upwards of 5K ASes" at paper scale

    def test_smallest_ases_agree(self, curves):
        assert curves.agreement_on_stubs() > 0.3 * len(curves.asns)


class TestMemberPerspective:
    def test_fig4_caps(self, default_world):
        """Paper: max bogon share ~10%, unrouted ~9%, invalid up to
        ~100% for a few members."""
        ccdf = compute_member_share_ccdf(default_world.result, APPROACH)
        assert ccdf.max_share("bogon") < 0.25
        assert ccdf.max_share("unrouted") < 0.25
        assert ccdf.max_share("invalid") > 0.5

    def test_fig5_venn_shape(self, default_world):
        venn = compute_filtering_venn(default_world.result, APPROACH)
        # A minority is clean; the all-three cell is the single biggest
        # leaking cell; unrouted contributors almost always leak more.
        assert 0.05 < venn.clean_share() < 0.4
        assert venn.share("bogon", "unrouted", "invalid") > 0.15
        assert venn.unrouted_also_other() > 0.8


class TestTrafficCharacteristics:
    def test_fig8a_small_spoofed_packets(self, default_world):
        """Paper: >80% of spoofed-class packets are <60 bytes; regular
        traffic is bimodal."""
        cdf = compute_packet_size_cdf(default_world.result, APPROACH)
        assert cdf.share_below("bogon", 60) > 0.8
        assert cdf.share_below("unrouted", 60) > 0.8
        assert cdf.share_below("regular", 60) < 0.2
        assert cdf.is_bimodal("regular")

    def test_fig8b_diurnal_vs_bursty(self, default_world):
        series = compute_timeseries(
            default_world.result, APPROACH, MEASUREMENT_SECONDS
        )
        assert series.burstiness("unrouted") > 2 * series.burstiness("regular")
        assert series.burstiness("invalid") > 2 * series.burstiness("regular")
        assert series.diurnal_strength("regular") > 1.5

    def test_fig9_portmix(self, default_world):
        """Paper: spoofed TCP DST dominated by web ports; Invalid UDP
        DST dominated by NTP; regular UDP mostly ephemeral."""
        mix = compute_port_mix(default_world.result, APPROACH)
        web_share = mix.share("tcp_dst", "unrouted", 80) + mix.share(
            "tcp_dst", "unrouted", 443
        )
        assert web_share > 0.5
        assert mix.share("udp_dst", "invalid", 123) > 0.5
        assert mix.share("udp_dst", "regular", "other") > 0.8
        # Response direction: regular UDP SRC has a visible NTP share.
        assert mix.share("udp_src", "regular", 123) > 0.01

    def test_fig10_address_structure(self, default_world):
        histograms = compute_address_histograms(default_world.result, APPROACH)
        # Unrouted sources spread wide; bogon sources concentrated.
        assert histograms.occupied_blocks("unrouted", "src") > 100
        assert histograms.concentration("bogon", "src") > 0.6
        # Destinations of unrouted floods concentrate on few victims.
        assert histograms.concentration(
            "unrouted", "dst"
        ) > histograms.concentration("unrouted", "src")


class TestAttackPatterns:
    def test_fig11a_random_vs_selective(self, default_world):
        ratios = compute_spoofing_ratios(default_world.result, APPROACH)
        # Unrouted: destinations receive a fresh source per packet.
        if ratios.num_destinations("unrouted"):
            assert ratios.rightmost_share("unrouted") > 0.6
        # Invalid: amplifiers fed by one spoofed source exist.
        assert ratios.num_destinations("invalid") > 0
        assert ratios.leftmost_share("invalid") > 0.3

    def test_ntp_member_concentration(self, default_world):
        """Paper: one member carries ~92% of Invalid NTP triggers."""
        stats = compute_ntp_stats(
            default_world.result, APPROACH, default_world.scenario.census
        )
        assert stats.top_member_share > 0.5
        assert stats.top5_member_share > 0.8

    def test_census_overlap_partial_and_growing(self, default_world):
        stats = compute_ntp_stats(
            default_world.result, APPROACH, default_world.scenario.census
        )
        overlaps = [stats.census_overlap[l] for l in sorted(stats.census_overlap)]
        assert 0 < overlaps[-1] < stats.num_amplifiers  # partial overlap
        assert overlaps[-1] >= overlaps[0]  # newer scans match better

    def test_fig11c_amplification_works(self, default_world):
        series = compute_amplification_timeseries(
            default_world.result, APPROACH, MEASUREMENT_SECONDS
        )
        assert series.byte_amplification() > 3.0
        assert 0.3 < series.packet_ratio() < 3.0
        assert series.packet_correlation() > 0.5


class TestFalsePositiveHunt:
    def test_sec44_reduction_shape(self, default_world):
        """Paper: WHOIS hunt removes ~59.9% of Invalid bytes and ~40%
        of packets — bytes drop more than packets, both substantial."""
        whois = build_whois(default_world.topo)
        hunt = hunt_false_positives(default_world.result, APPROACH, whois)
        assert hunt.byte_reduction > 0.2
        assert hunt.packet_reduction > 0.1
        assert hunt.byte_reduction > hunt.packet_reduction


class TestDetectorQuality:
    def test_full_cone_most_precise(self, default_world):
        """The paper's rationale for choosing the Full Cone: fewest
        false positives."""
        qualities = {
            name: evaluate_against_truth(default_world.result, name)
            for name in ("naive+orgs", "cc+orgs", "full+orgs")
        }
        assert qualities["full+orgs"].precision >= qualities["cc+orgs"].precision
        assert qualities["full+orgs"].precision >= qualities["naive+orgs"].precision

    def test_recall_high_everywhere(self, default_world):
        for name in ("naive+orgs", "cc+orgs", "full+orgs"):
            quality = evaluate_against_truth(default_world.result, name)
            assert quality.recall > 0.8
