"""Tests for the AS topology data model."""

import pytest

from repro.net.prefix import Prefix
from repro.topology.model import ASNode, ASTopology, BusinessType, Relationship


class TestRelationshipEnum:
    def test_inverse(self):
        assert Relationship.CUSTOMER_OF.inverse() is Relationship.PROVIDER_OF
        assert Relationship.PROVIDER_OF.inverse() is Relationship.CUSTOMER_OF
        assert Relationship.PEER.inverse() is Relationship.PEER
        assert Relationship.SIBLING.inverse() is Relationship.SIBLING


class TestLinkWiring:
    def test_customer_of_wires_both_sides(self, micro_topology):
        assert 1 in micro_topology.node(3).providers
        assert 3 in micro_topology.node(1).customers

    def test_peer_wires_both_sides(self, micro_topology):
        assert 2 in micro_topology.node(1).peers
        assert 1 in micro_topology.node(2).peers

    def test_relationship_lookup(self, micro_topology):
        assert micro_topology.relationship(3, 1) is Relationship.CUSTOMER_OF
        assert micro_topology.relationship(1, 3) is Relationship.PROVIDER_OF
        assert micro_topology.relationship(1, 2) is Relationship.PEER
        assert micro_topology.relationship(5, 7) is None

    def test_duplicate_asn_rejected(self, micro_topology):
        with pytest.raises(ValueError):
            micro_topology.add_as(
                ASNode(1, BusinessType.NSP, tier=1, org_id=99)
            )

    def test_sibling_links(self):
        topo = ASTopology()
        topo.add_as(ASNode(1, BusinessType.NSP, 1, org_id=1))
        topo.add_as(ASNode(2, BusinessType.NSP, 1, org_id=1))
        topo.add_link(1, 2, Relationship.SIBLING)
        assert topo.relationship(1, 2) is Relationship.SIBLING
        assert 2 in topo.node(1).siblings


class TestQueries:
    def test_customer_cone_transitive(self, micro_topology):
        assert micro_topology.customer_cone(1) == {1, 3, 5, 6}
        assert micro_topology.customer_cone(2) == {2, 4, 6, 7, 8}
        assert micro_topology.customer_cone(3) == {3, 5, 6}

    def test_customer_cone_of_stub_is_self(self, micro_topology):
        assert micro_topology.customer_cone(5) == {5}

    def test_org_siblings(self, micro_topology):
        assert micro_topology.org_siblings(6) == {6, 8}
        assert micro_topology.org_siblings(5) == {5}

    def test_all_links_each_once(self, micro_topology):
        links = micro_topology.all_links()
        seen = {(min(a, b), max(a, b)) for a, b, _r in links}
        assert len(seen) == len(links) == 8

    def test_is_stub(self, micro_topology):
        assert micro_topology.node(5).is_stub
        assert not micro_topology.node(3).is_stub

    def test_tier1_asns(self, micro_topology):
        assert micro_topology.tier1_asns() == {1, 2}

    def test_neighbors(self, micro_topology):
        assert micro_topology.node(6).neighbors == {3, 4}

    def test_announced_prefixes(self, micro_topology):
        micro_topology.node(5).prefixes.append(Prefix.parse("10.0.0.0/16"))
        announced = micro_topology.announced_prefixes()
        assert announced[5] == [Prefix.parse("10.0.0.0/16")]
        assert announced[7] == []

    def test_len_and_contains(self, micro_topology):
        assert len(micro_topology) == 8
        assert 5 in micro_topology
        assert 99 not in micro_topology
