"""Randomized delta-vs-rebuild parity for the online pipeline state.

The incremental path's contract is exact: after any sequence of
announce/withdraw deltas, the patched finalized RIB views, the
reachability closure, and every cone approach's packed validity
matrix must be *bit-equal* to a from-scratch rebuild over the same
live routes. These tests drive random adversarial event sequences
(route kills, resurrections, duplicate withdrawals, MOAS origin
flips, org-sibling churn) and compare at every step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bgp.messages import RouteObservation
from repro.bgp.rib import GlobalRIB, _FinalizedRIB
from repro.cones.closure import ReachabilityClosure
from repro.cones.customer_cone import CustomerConeValidSpace
from repro.cones.full_cone import FullConeValidSpace
from repro.cones.naive import NaiveValidSpace
from repro.cones.orgs import apply_org_merge
from repro.net.prefix import Prefix
from repro.stream import OnlineValidState


def obs(prefix, *path, withdrawal=False):
    return RouteObservation(
        prefix=Prefix.parse(prefix),
        path=tuple(path),
        source="rrc00",
        from_update=True,
        withdrawal=withdrawal,
    )


def assert_finalized_parity(rib: GlobalRIB) -> None:
    """The (possibly patched) finalized view == a from-scratch build."""
    patched = rib._final()
    fresh = _FinalizedRIB(rib)
    assert patched.indexer.asns() == fresh.indexer.asns()
    np.testing.assert_array_equal(patched._seg_starts, fresh._seg_starts)
    np.testing.assert_array_equal(patched._seg_prefix, fresh._seg_prefix)
    np.testing.assert_array_equal(
        patched._origin_index_per_prefix, fresh._origin_index_per_prefix
    )
    np.testing.assert_array_equal(
        patched.exclusive_per_prefix, fresh.exclusive_per_prefix
    )
    np.testing.assert_array_equal(
        patched.exclusive_per_origin, fresh.exclusive_per_origin
    )
    np.testing.assert_array_equal(
        patched.routed_space._starts, fresh.routed_space._starts
    )
    np.testing.assert_array_equal(
        patched.routed_space._ends, fresh.routed_space._ends
    )


class EventFuzzer:
    """Random announce/withdraw generator over a small AS/prefix pool."""

    def __init__(self, rng, n_asns=24, n_prefixes=14):
        self.rng = rng
        self.asns = list(range(1, n_asns + 1))
        self.prefixes = [f"{10 + i}.0.0.0/16" for i in range(n_prefixes)]
        self.live: list[tuple[str, tuple[int, ...]]] = []

    def random_path(self) -> tuple[int, ...]:
        length = int(self.rng.integers(2, 5))
        picked = self.rng.choice(len(self.asns), size=length, replace=False)
        return tuple(self.asns[i] for i in picked)

    def next_event(self) -> RouteObservation:
        roll = self.rng.random()
        if roll < 0.40 or not self.live:
            # Fresh announcement (sometimes a duplicate of a live one).
            prefix = self.prefixes[self.rng.integers(len(self.prefixes))]
            path = self.random_path()
            self.live.append((prefix, path))
            return obs(prefix, *path)
        if roll < 0.80:
            # Withdraw a live route (may already be gone: duplicates
            # in self.live model duplicate withdrawals).
            index = int(self.rng.integers(len(self.live)))
            prefix, path = self.live.pop(index)
            return obs(prefix, *path, withdrawal=True)
        # Withdrawal of a route that may never have been announced.
        prefix = self.prefixes[self.rng.integers(len(self.prefixes))]
        return obs(prefix, *self.random_path(), withdrawal=True)


class TestFinalizedRIBParity:
    @pytest.mark.parametrize("seed", [7, 19, 311])
    def test_random_event_sequence(self, seed):
        rng = np.random.default_rng(seed)
        fuzzer = EventFuzzer(rng)
        rib = GlobalRIB()
        rib._final()  # build once, then keep patching it
        applied = 0
        for _ in range(120):
            delta = rib.apply(fuzzer.next_event())
            applied += int(delta.applied)
            assert_finalized_parity(rib)
            assert rib.num_withdrawals == (
                rib.num_withdrawals_applied + rib.num_withdrawals_ignored
            )
            assert (
                rib.num_accepted - rib.num_withdrawals_applied
                == rib.num_live_routes
            )
        assert applied > 40, "fuzzer should exercise the delta path"

    def test_kill_and_resurrect_every_prefix(self):
        rib = GlobalRIB()
        routes = [
            ("10.0.0.0/16", (1, 2, 3)),
            ("10.0.0.0/17", (1, 4)),  # more-specific carve-out
            ("10.0.128.0/17", (2, 3)),
            ("20.0.0.0/16", (4, 2, 3)),
        ]
        for prefix, path in routes:
            rib.apply(obs(prefix, *path))
        rib._final()
        for prefix, path in routes:
            rib.apply(obs(prefix, *path, withdrawal=True))
            assert_finalized_parity(rib)
        assert rib.num_live_routes == 0
        assert rib.routed_space().num_addresses == 0
        for prefix, path in routes:
            rib.apply(obs(prefix, *path))
            assert_finalized_parity(rib)


class TestClosureAddEdge:
    @pytest.mark.parametrize("seed", [3, 41])
    def test_incremental_matches_rebuild(self, seed):
        rng = np.random.default_rng(seed)
        n = 40
        for _round in range(12):
            n_edges = int(rng.integers(10, 80))
            edges = [
                (int(rng.integers(n)), int(rng.integers(n)))
                for _ in range(n_edges)
            ]
            closure = ReachabilityClosure(n, edges)
            for _ in range(10):
                src, dst = int(rng.integers(n)), int(rng.integers(n))
                before = closure.node_rows().copy()
                changed = closure.add_edge(src, dst)
                edges.append((src, dst))
                fresh = ReachabilityClosure(n, edges)
                if changed is None:
                    # Cycle: condensation changes, caller must rebuild.
                    closure = fresh
                    continue
                np.testing.assert_array_equal(
                    closure.node_rows(), fresh.node_rows()
                )
                # The changed-node set is exact: precisely the rows
                # that differ from the pre-add state.
                really_changed = np.flatnonzero(
                    (closure.node_rows() != before).any(axis=1)
                )
                np.testing.assert_array_equal(
                    np.sort(np.asarray(changed)), really_changed
                )

    def test_implied_edge_is_noop(self):
        closure = ReachabilityClosure(3, [(0, 1), (1, 2)])
        changed = closure.add_edge(0, 2)  # already reachable
        assert changed is not None and len(changed) == 0

    def test_cycle_returns_none(self):
        closure = ReachabilityClosure(3, [(0, 1), (1, 2)])
        assert closure.add_edge(2, 0) is None


def build_approaches(rib, org_mapping):
    naive = NaiveValidSpace(rib)
    cc = CustomerConeValidSpace(rib)
    full = FullConeValidSpace(rib)
    return {
        "naive": naive,
        "cc": cc,
        "full": full,
        "naive+orgs": apply_org_merge(naive, org_mapping),
        "cc+orgs": apply_org_merge(cc, org_mapping),
        "full+orgs": apply_org_merge(full, org_mapping),
    }


class TestConeDeltaParity:
    """All six approaches stay bit-equal to from-scratch maps."""

    @pytest.mark.parametrize("seed", [11, 97])
    def test_random_stream(self, seed):
        rng = np.random.default_rng(seed)
        fuzzer = EventFuzzer(rng, n_asns=24, n_prefixes=12)
        # Org siblings: groups of three consecutive ASNs share an org.
        org_mapping = {asn: (asn - 1) // 3 for asn in fuzzer.asns}
        members = tuple(fuzzer.asns[::2]) + (999,)  # incl. unknown AS

        rib = GlobalRIB()
        for _ in range(30):  # seed state before the maps exist
            rib.apply(fuzzer.next_event())
        approaches = build_approaches(rib, org_mapping)
        state = OnlineValidState(rib, approaches)
        for approach in approaches.values():
            approach.packed_matrix(members)  # warm the caches

        checked = 0
        for step in range(150):
            state.apply_route(fuzzer.next_event())
            if step % 5:
                continue
            fresh = build_approaches(rib, org_mapping)
            for name, approach in approaches.items():
                np.testing.assert_array_equal(
                    approach.packed_matrix(members),
                    fresh[name].packed_matrix(members),
                    err_msg=f"approach {name} diverged at step {step}",
                )
            checked += 1
        assert checked >= 30
        assert state.n_applied > 50

    def test_ignored_event_touches_nothing(self):
        rib = GlobalRIB()
        rib.apply(obs("10.0.0.0/16", 1, 2, 3))
        approaches = build_approaches(rib, {1: 1, 2: 1, 3: 2})
        state = OnlineValidState(rib, approaches)
        members = (1, 2, 3)
        matrices = {
            name: approach.packed_matrix(members)
            for name, approach in approaches.items()
        }
        delta = state.apply_route(obs("99.0.0.0/16", 1, 2, withdrawal=True))
        assert not delta.applied
        assert state.n_ignored == 1 and state.n_applied == 0
        for name, approach in approaches.items():
            # Identity: the memoised matrix must not even be rebuilt.
            assert approach.packed_matrix(members) is matrices[name]

    def test_org_sibling_patch_propagates(self):
        # AS 5 and AS 6 share an org; a delta touching only AS 6's
        # row must refresh AS 5's merged row too.
        rib = GlobalRIB()
        rib.apply(obs("10.0.0.0/16", 5, 1))
        rib.apply(obs("20.0.0.0/16", 6, 2))
        mapping = {5: 77, 6: 77, 1: 1, 2: 2}
        approaches = build_approaches(rib, mapping)
        state = OnlineValidState(rib, approaches)
        members = (5, 6)
        merged = approaches["full+orgs"]
        merged.packed_matrix(members)
        state.apply_route(obs("20.0.0.0/16", 6, 1))  # grow AS 6's cone
        fresh = build_approaches(rib, mapping)["full+orgs"]
        np.testing.assert_array_equal(
            merged.packed_matrix(members), fresh.packed_matrix(members)
        )
        # Sibling symmetry really holds: 5's row covers 6's space.
        np.testing.assert_array_equal(
            merged.packed_matrix(members)[0], merged.packed_matrix(members)[1]
        )
