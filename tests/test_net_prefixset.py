"""Unit and property tests for PrefixSet (interval set algebra)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.prefix import Prefix
from repro.net.prefixset import PrefixSet, union_all


def ps(*texts: str) -> PrefixSet:
    return PrefixSet(Prefix.parse(t) for t in texts)


class TestConstruction:
    def test_empty(self):
        empty = PrefixSet()
        assert not empty
        assert empty.num_addresses == 0
        assert empty.num_intervals == 0

    def test_merges_adjacent(self):
        merged = ps("10.0.0.0/9", "10.128.0.0/9")
        assert merged.num_intervals == 1
        assert merged == ps("10.0.0.0/8")

    def test_merges_overlapping(self):
        merged = ps("10.0.0.0/8", "10.1.0.0/16")
        assert merged == ps("10.0.0.0/8")

    def test_from_intervals_drops_empty(self):
        s = PrefixSet.from_intervals([(5, 5), (10, 20)])
        assert s.num_addresses == 10

    def test_universe(self):
        assert PrefixSet.universe().num_addresses == 2**32

    def test_slash24_equivalents(self):
        assert ps("10.0.0.0/8").slash24_equivalents == 65536.0


class TestMembership:
    def test_scalar_contains(self):
        s = ps("192.0.2.0/24")
        assert Prefix.parse("192.0.2.0/24").first in s
        assert Prefix.parse("192.0.2.0/24").last in s
        assert (Prefix.parse("192.0.2.0/24").last + 1) not in s

    def test_contains_many(self):
        s = ps("10.0.0.0/8", "192.0.2.0/24")
        addrs = np.array(
            [10 << 24, (10 << 24) - 1, Prefix.parse("192.0.2.0/24").first],
            dtype=np.uint64,
        )
        assert s.contains_many(addrs).tolist() == [True, False, True]

    def test_contains_many_empty_set(self):
        assert not PrefixSet().contains_many(np.array([1, 2])).any()

    def test_contains_prefix(self):
        s = ps("10.0.0.0/8")
        assert s.contains_prefix(Prefix.parse("10.1.0.0/16"))
        assert not s.contains_prefix(Prefix.parse("0.0.0.0/7"))

    def test_issubset(self):
        assert ps("10.1.0.0/16").issubset(ps("10.0.0.0/8"))
        assert not ps("11.0.0.0/16").issubset(ps("10.0.0.0/8"))


class TestAlgebra:
    def test_union(self):
        union = ps("10.0.0.0/8") | ps("11.0.0.0/8")
        assert union.num_addresses == 2 * 2**24
        assert union.num_intervals == 1  # adjacent blocks merge

    def test_intersection(self):
        inter = ps("10.0.0.0/8") & ps("10.1.0.0/16", "11.0.0.0/8")
        assert inter == ps("10.1.0.0/16")

    def test_intersection_disjoint(self):
        assert not (ps("10.0.0.0/8") & ps("12.0.0.0/8"))

    def test_difference_carves_hole(self):
        diff = ps("10.0.0.0/8") - ps("10.1.0.0/16")
        assert diff.num_addresses == 2**24 - 2**16
        assert Prefix.parse("10.1.0.0/16").first not in diff
        assert (10 << 24) in diff

    def test_difference_total(self):
        assert not (ps("10.0.0.0/8") - ps("0.0.0.0/0"))

    def test_union_all(self):
        total = union_all([ps("10.0.0.0/8"), ps("11.0.0.0/8"), ps("10.0.0.0/9")])
        assert total.num_addresses == 2 * 2**24

    def test_prefixes_roundtrip(self):
        original = ps("10.0.0.0/8", "192.0.2.0/24")
        rebuilt = PrefixSet(original.prefixes())
        assert rebuilt == original


intervals_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2**32 - 2),
        st.integers(min_value=1, max_value=2**20),
    ).map(lambda t: (t[0], min(t[0] + t[1], 2**32))),
    min_size=0,
    max_size=12,
)


class TestPropertyBased:
    @settings(max_examples=80, deadline=None)
    @given(intervals_strategy, intervals_strategy)
    def test_set_algebra_laws(self, a_intervals, b_intervals):
        a = PrefixSet.from_intervals(a_intervals)
        b = PrefixSet.from_intervals(b_intervals)
        union = a | b
        inter = a & b
        diff = a - b
        # |A∪B| = |A| + |B| - |A∩B|
        assert union.num_addresses == (
            a.num_addresses + b.num_addresses - inter.num_addresses
        )
        # A-B and A∩B partition A.
        assert diff.num_addresses + inter.num_addresses == a.num_addresses
        # Difference result is disjoint from B.
        assert not (diff & b)

    @settings(max_examples=50, deadline=None)
    @given(intervals_strategy)
    def test_scalar_and_bulk_membership_agree(self, intervals):
        s = PrefixSet.from_intervals(intervals)
        probes = []
        for start, end in intervals[:6]:
            probes.extend([start, end - 1, max(start - 1, 0), min(end, 2**32 - 1)])
        if not probes:
            probes = [0, 2**32 - 1]
        arr = np.array(probes, dtype=np.uint64)
        bulk = s.contains_many(arr)
        for addr, expected in zip(probes, bulk):
            assert (addr in s) == bool(expected)

    @settings(max_examples=50, deadline=None)
    @given(intervals_strategy)
    def test_cidr_decomposition_covers_exactly(self, intervals):
        s = PrefixSet.from_intervals(intervals)
        rebuilt = PrefixSet(s.prefixes())
        assert rebuilt == s
