"""Tests for the synthetic dataset generators (as2org, peeringdb, ark,
spoofer, zmap, whois)."""

import numpy as np
import pytest

from repro.datasets.ark import run_ark_campaign
from repro.datasets.as2org import build_as2org
from repro.datasets.peeringdb import build_peeringdb
from repro.datasets.spoofer import SpoofOutcome, run_spoofer_campaign
from repro.datasets.whois import build_whois
from repro.datasets.zmap import generate_ntp_census
from repro.net.prefix import Prefix
from repro.net.prefixset import PrefixSet
from repro.topology.generator import TopologyConfig, generate_topology
from repro.traffic.behaviors import MemberBehavior


@pytest.fixture(scope="module")
def topo():
    return generate_topology(TopologyConfig(n_ases=300, seed=41))


class TestAs2Org:
    def test_every_as_mapped(self, topo):
        dataset = build_as2org(topo)
        assert set(r.asn for r in dataset.records) == set(topo.ases)

    def test_visible_orgs_preserved(self, topo):
        dataset = build_as2org(topo)
        for org in topo.orgs.values():
            if len(org.asns) > 1 and org.in_as2org:
                ids = {dataset.org_of(asn) for asn in org.asns}
                assert len(ids) == 1

    def test_hidden_orgs_split(self, topo):
        dataset = build_as2org(topo)
        hidden = [
            org
            for org in topo.orgs.values()
            if len(org.asns) > 1 and not org.in_as2org
        ]
        assert hidden
        for org in hidden:
            ids = {dataset.org_of(asn) for asn in org.asns}
            assert len(ids) == len(org.asns)  # singletons

    def test_multi_as_orgs(self, topo):
        dataset = build_as2org(topo)
        for org_id, members in dataset.multi_as_orgs().items():
            assert len(members) > 1


class TestPeeringDB:
    def test_types_match_ground_truth(self, topo, rng):
        dataset = build_peeringdb(topo, rng)
        for record in dataset.records:
            assert record.business_type is topo.node(record.asn).business_type

    def test_partial_coverage(self, topo, rng):
        dataset = build_peeringdb(topo, rng, coverage=0.8)
        assert 0.7 < dataset.coverage() < 0.9

    def test_unknown_asn(self, topo, rng):
        dataset = build_peeringdb(topo, rng, asns=[1, 2])
        assert dataset.business_type(99999) is None


class TestArk:
    def test_router_addresses_come_from_links(self, topo, rng):
        ark = run_ark_campaign(topo, rng, n_traces=800)
        link_addrs = {
            addr for pair in topo.link_addresses.values() for addr in pair
        }
        assert len(ark) > 0
        assert set(ark.router_addresses.tolist()) <= link_addrs

    def test_contains_vectorised(self, topo, rng):
        ark = run_ark_campaign(topo, rng, n_traces=800)
        known = ark.router_addresses[:3]
        unknown = np.array([1, 2, 3], dtype=np.uint64)
        assert ark.contains(known).all()
        assert not ark.contains(unknown).any()

    def test_partial_coverage(self, topo, rng):
        few = run_ark_campaign(topo, np.random.default_rng(1), n_traces=30)
        many = run_ark_campaign(topo, np.random.default_rng(1), n_traces=3000)
        assert few.router_addresses.size < many.router_addresses.size

    def test_traces_walk_up(self, topo, rng):
        ark = run_ark_campaign(topo, rng, n_traces=200)
        for trace in ark.traceroutes[:50]:
            assert trace.hops


class TestSpoofer:
    def _behaviors(self, asns):
        out = {}
        for i, asn in enumerate(asns):
            spoofable = i % 2 == 0
            out[asn] = MemberBehavior(
                asn=asn,
                emits_bogon=spoofable,
                emits_unrouted=False,
                emits_invalid=False,
                router_stray=False,
            )
        return out

    def test_sample_size(self, topo, rng):
        dataset = run_spoofer_campaign(rng, sorted(topo.ases), {}, test_fraction=0.1)
        assert len(dataset) == 30

    def test_nat_probes_excluded_from_direct(self, topo, rng):
        dataset = run_spoofer_campaign(rng, sorted(topo.ases), {}, nat_fraction=0.5)
        assert len(dataset.direct_results()) < len(dataset)
        assert dataset.tested_asns(include_nat=True) >= dataset.tested_asns()

    def test_filtered_networks_never_spoofable(self, topo, rng):
        asns = sorted(topo.ases)
        behaviors = self._behaviors(asns)
        dataset = run_spoofer_campaign(
            rng, asns, behaviors, test_fraction=0.5, upstream_drop_prob=0.0
        )
        for result in dataset.results:
            behavior = behaviors[result.asn]
            if not behavior.emits_bogon:
                assert result.outcome is SpoofOutcome.BLOCKED

    def test_upstream_drops_lower_bound(self, topo):
        asns = sorted(topo.ases)
        behaviors = self._behaviors(asns)
        no_drop = run_spoofer_campaign(
            np.random.default_rng(3), asns, behaviors, test_fraction=0.6,
            upstream_drop_prob=0.0,
        )
        heavy_drop = run_spoofer_campaign(
            np.random.default_rng(3), asns, behaviors, test_fraction=0.6,
            upstream_drop_prob=0.9,
        )
        assert len(heavy_drop.spoofable_asns()) < len(no_drop.spoofable_asns())


class TestZmapCensus:
    def test_servers_in_routed_space(self, rng):
        routed = PrefixSet([Prefix.parse("60.0.0.0/8")])
        census = generate_ntp_census(rng, routed, n_servers=500)
        assert routed.contains_many(census.current()).all()

    def test_snapshots_churn(self, rng):
        routed = PrefixSet([Prefix.parse("60.0.0.0/8")])
        census = generate_ntp_census(rng, routed, n_servers=500, churn=0.4)
        current = census.current()
        oldest = census.snapshot(census.labels[0])
        overlap = np.isin(current, oldest).mean()
        assert 0.3 < overlap < 0.8

    def test_overlap_counts(self, rng):
        routed = PrefixSet([Prefix.parse("60.0.0.0/8")])
        census = generate_ntp_census(rng, routed, n_servers=300)
        sample = census.current()[:50]
        assert census.overlap(sample) == 50
        outsiders = np.array([1, 2, 3], dtype=np.uint64)
        assert census.overlap(outsiders) == 0

    def test_older_snapshots_match_less(self, rng):
        routed = PrefixSet([Prefix.parse("60.0.0.0/8")])
        census = generate_ntp_census(rng, routed, n_servers=800, churn=0.35)
        targets = census.current()[:300]
        overlaps = [census.overlap(targets, label) for label in census.labels]
        assert overlaps[-1] >= overlaps[0]


class TestWhois:
    def test_org_handles_reveal_hidden_orgs(self, topo):
        whois = build_whois(topo)
        hidden = [
            org
            for org in topo.orgs.values()
            if len(org.asns) > 1 and not org.in_as2org
        ]
        assert hidden
        for org in hidden:
            members = sorted(org.asns)
            assert whois.same_org(members[0], members[1])

    def test_policy_links_for_real_neighbors(self, topo):
        whois = build_whois(topo)
        for a, b, _rel in topo.all_links()[:100]:
            assert whois.policy_link(a, b)

    def test_backup_transit_documented(self, topo):
        whois = build_whois(topo)
        for provider, customer in topo.backup_transit:
            assert whois.policy_link(provider, customer)

    def test_tunnel_remarks(self, topo):
        whois = build_whois(topo)
        for carrier, origin in topo.tunnels:
            assert whois.tunnel_remark(carrier, origin)
            assert not whois.tunnel_remark(origin, carrier)

    def test_pa_inetnum_names_customer(self, topo):
        whois = build_whois(topo)
        assert topo.pa_assignments
        for customer, _provider, prefix in topo.pa_assignments:
            assert whois.registered_user(prefix.first) == customer

    def test_unrelated_ases_not_linked(self, topo):
        whois = build_whois(topo)
        # Find two stubs with disjoint neighborhoods and orgs.
        stubs = [
            asn
            for asn, node in topo.ases.items()
            if node.is_stub and len(topo.org_siblings(asn)) == 1
        ]
        a, b = stubs[0], stubs[1]
        if b not in topo.node(a).neighbors:
            assert not whois.same_org(a, b)
            assert not whois.policy_link(a, b)
