"""Unit tests for repro.net.addr."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addr import (
    MAX_IPV4,
    addr_to_int,
    int_to_addr,
    parse_prefix,
    random_addr_in_prefix,
)
from repro.net.errors import AddressError, PrefixError


class TestAddrToInt:
    def test_known_values(self):
        assert addr_to_int("0.0.0.0") == 0
        assert addr_to_int("10.0.0.1") == (10 << 24) + 1
        assert addr_to_int("255.255.255.255") == MAX_IPV4
        assert addr_to_int("192.168.1.1") == 0xC0A80101

    def test_rejects_short_and_long_quads(self):
        with pytest.raises(AddressError):
            addr_to_int("10.0.0")
        with pytest.raises(AddressError):
            addr_to_int("10.0.0.0.0")

    def test_rejects_out_of_range_octet(self):
        with pytest.raises(AddressError):
            addr_to_int("256.0.0.1")

    def test_rejects_negative_octet(self):
        with pytest.raises(AddressError):
            addr_to_int("-1.0.0.1")

    def test_rejects_non_numeric(self):
        with pytest.raises(AddressError):
            addr_to_int("a.b.c.d")

    def test_rejects_leading_zeros(self):
        with pytest.raises(AddressError):
            addr_to_int("010.0.0.1")

    def test_rejects_empty_octet(self):
        with pytest.raises(AddressError):
            addr_to_int("10..0.1")


class TestIntToAddr:
    def test_known_values(self):
        assert int_to_addr(0) == "0.0.0.0"
        assert int_to_addr(MAX_IPV4) == "255.255.255.255"
        assert int_to_addr(0x7F000001) == "127.0.0.1"

    def test_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            int_to_addr(-1)
        with pytest.raises(AddressError):
            int_to_addr(2**32)

    @given(st.integers(min_value=0, max_value=MAX_IPV4))
    def test_roundtrip(self, value):
        assert addr_to_int(int_to_addr(value)) == value


class TestParsePrefix:
    def test_parses_base_and_length(self):
        network, length = parse_prefix("10.0.0.0/8")
        assert network == 10 << 24
        assert length == 8

    def test_parses_host_route(self):
        network, length = parse_prefix("1.2.3.4/32")
        assert network == addr_to_int("1.2.3.4")
        assert length == 32

    def test_rejects_missing_length(self):
        with pytest.raises(PrefixError):
            parse_prefix("10.0.0.0")

    def test_rejects_bad_length(self):
        with pytest.raises(PrefixError):
            parse_prefix("10.0.0.0/33")
        with pytest.raises(PrefixError):
            parse_prefix("10.0.0.0/-1")
        with pytest.raises(PrefixError):
            parse_prefix("10.0.0.0/x")

    def test_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            parse_prefix("10.0.0.1/8")


class TestRandomAddrInPrefix:
    def test_stays_in_prefix(self):
        rng = np.random.default_rng(1)
        network, length = parse_prefix("192.0.2.0/24")
        for _ in range(100):
            addr = random_addr_in_prefix(rng, network, length)
            assert network <= addr < network + 256

    def test_host_route_is_deterministic(self):
        rng = np.random.default_rng(1)
        network, length = parse_prefix("192.0.2.7/32")
        assert random_addr_in_prefix(rng, network, length) == network
