"""Unit tests for repro.net.prefix.Prefix."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.errors import PrefixError
from repro.net.prefix import Prefix


def prefixes(min_len=0, max_len=32):
    """Hypothesis strategy producing valid prefixes."""
    return st.integers(min_value=min_len, max_value=max_len).flatmap(
        lambda length: st.integers(
            min_value=0, max_value=(1 << length) - 1 if length else 0
        ).map(lambda top: Prefix(top << (32 - length), length))
    )


class TestConstruction:
    def test_parse(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert prefix.network == 10 << 24
        assert prefix.length == 8

    def test_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            Prefix(1, 8)

    def test_rejects_bad_length(self):
        with pytest.raises(PrefixError):
            Prefix(0, 40)

    def test_str_roundtrip(self):
        assert str(Prefix.parse("198.51.100.0/24")) == "198.51.100.0/24"

    def test_equality_and_hash(self):
        assert Prefix.parse("10.0.0.0/8") == Prefix.parse("10.0.0.0/8")
        assert len({Prefix.parse("10.0.0.0/8"), Prefix.parse("10.0.0.0/8")}) == 1


class TestGeometry:
    def test_first_last(self):
        prefix = Prefix.parse("192.0.2.0/24")
        assert prefix.first == prefix.network
        assert prefix.last == prefix.network + 255

    def test_num_addresses(self):
        assert Prefix.parse("0.0.0.0/0").num_addresses == 2**32
        assert Prefix.parse("1.2.3.4/32").num_addresses == 1

    def test_slash24_equivalents(self):
        assert Prefix.parse("10.0.0.0/8").slash24_equivalents == 65536
        assert Prefix.parse("192.0.2.0/24").slash24_equivalents == 1
        assert Prefix.parse("1.2.3.0/25").slash24_equivalents == 0.5

    def test_contains(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert prefix.contains((10 << 24) + 12345)
        assert not prefix.contains(11 << 24)

    def test_covers(self):
        big = Prefix.parse("10.0.0.0/8")
        small = Prefix.parse("10.1.0.0/16")
        assert big.covers(small)
        assert big.covers(big)
        assert not small.covers(big)
        assert not big.covers(Prefix.parse("11.0.0.0/16"))


class TestSubnetsAndSupernet:
    def test_subnets(self):
        low, high = Prefix.parse("10.0.0.0/8").subnets()
        assert str(low) == "10.0.0.0/9"
        assert str(high) == "10.128.0.0/9"

    def test_subnets_of_host_route_fail(self):
        with pytest.raises(PrefixError):
            Prefix.parse("1.2.3.4/32").subnets()

    def test_supernet(self):
        assert str(Prefix.parse("10.128.0.0/9").supernet()) == "10.0.0.0/8"

    def test_supernet_of_default_fails(self):
        with pytest.raises(PrefixError):
            Prefix.parse("0.0.0.0/0").supernet()

    @given(prefixes(min_len=1))
    def test_supernet_covers_child(self, prefix):
        assert prefix.supernet().covers(prefix)

    @given(prefixes(max_len=31))
    def test_subnets_partition_parent(self, prefix):
        low, high = prefix.subnets()
        assert low.first == prefix.first
        assert high.last == prefix.last
        assert low.last + 1 == high.first
        assert low.num_addresses + high.num_addresses == prefix.num_addresses


class TestOrdering:
    def test_sorts_by_network_then_length(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.0.0.0/16")
        c = Prefix.parse("11.0.0.0/8")
        assert sorted([c, b, a]) == [a, b, c]
