"""Integration tests for the world builder and the study report."""

import numpy as np
import pytest

from repro.analysis.report import build_study_report
from repro.experiments import WorldConfig, build_world
from repro.experiments.runner import APPROACHES, PRIMARY_APPROACH


class TestWorldBuilder:
    def test_all_approaches_present(self, tiny_world):
        assert set(tiny_world.approaches) == set(APPROACHES)
        assert tiny_world.primary == PRIMARY_APPROACH

    def test_member_count(self, tiny_world):
        assert len(tiny_world.ixp) == tiny_world.config.n_members

    def test_rib_covers_announced_space(self, tiny_world):
        """Every openly announced prefix must be in the RIB."""
        rib = tiny_world.rib
        for asn, policy in tiny_world.policies.items():
            for group in policy.groups:
                if group.first_hops is None:
                    for prefix in group.prefixes:
                        assert rib.prefix_id(prefix) is not None, (asn, prefix)

    def test_dark_prefixes_stay_unrouted(self, tiny_world):
        routed = tiny_world.rib.routed_space()
        for node in tiny_world.topo.ases.values():
            for prefix in node.dark_prefixes:
                assert prefix.first not in routed

    def test_result_covers_all_flows(self, tiny_world):
        assert tiny_world.result is not None
        for name in APPROACHES:
            assert tiny_world.result.label_vector(name).size == len(
                tiny_world.scenario.flows
            )

    def test_bgp_only_world_skips_traffic(self, bgp_only_world):
        assert bgp_only_world.scenario is None
        assert bgp_only_world.result is None

    def test_classify_false(self):
        world = build_world(WorldConfig.tiny(seed=5), classify=False)
        assert world.scenario is not None
        assert world.result is None

    def test_origin_indices_match_lookup(self, tiny_world):
        flows = tiny_world.scenario.flows
        pids, oidx = tiny_world.rib.lookup_many(flows.src[:500])
        assert (pids == tiny_world.result.prefix_ids[:500]).all()
        assert (oidx == tiny_world.result.origin_indices[:500]).all()


class TestStudyReport:
    @pytest.fixture(scope="class")
    def report(self, tiny_world):
        return build_study_report(tiny_world)

    def test_report_renders(self, report):
        text = report.render()
        for marker in (
            "Fig.1a",
            "Fig.2", "Fig.4", "Fig.5", "Fig.6", "Fig.7", "Fig.8a",
            "Fig.8b", "Fig.9", "Fig.10", "Fig.11a", "Fig.11b", "Fig.11c",
            "Sec.7", "Sec.4.4", "Sec.4.5",
        ):
            assert marker in text, marker

    def test_report_datasets_attached(self, report):
        assert set(report.datasets) == {"peeringdb", "ark", "whois", "spoofer"}

    def test_requires_classified_world(self, bgp_only_world):
        with pytest.raises(ValueError):
            build_study_report(bgp_only_world)

    def test_fig2_sampling_cap(self, tiny_world):
        report = build_study_report(tiny_world, fig2_sample=25)
        assert len(report.cone_sizes.asns) == 25
