"""Tests for the operator survey (Section 2.2)."""

import numpy as np
import pytest

from repro.survey import (
    EgressPolicy,
    IngressPolicy,
    generate_survey_responses,
    tabulate,
)
from repro.survey.model import MARGINALS


@pytest.fixture(scope="module")
def results():
    rng = np.random.default_rng(42)
    return tabulate(generate_survey_responses(rng, n=84))


class TestGeneration:
    def test_sample_size(self, results):
        assert results.n == 84

    def test_all_regions(self, results):
        assert results.regions_covered >= 4

    def test_tabulate_empty_rejected(self):
        with pytest.raises(ValueError):
            tabulate([])


class TestMarginals:
    """Shares should approximate Section 2.2 within sampling noise."""

    def test_suffered_attacks(self, results):
        assert abs(results.suffered_attack_share - 0.70) < 0.15

    def test_complaints(self, results):
        assert abs(results.complained_share - 0.50) < 0.15

    def test_no_validation(self, results):
        assert abs(results.no_validation_share - 0.24) < 0.15

    def test_ingress_mix(self, results):
        assert (
            results.ingress_shares[IngressPolicy.WELL_KNOWN_RANGES]
            > results.ingress_shares[IngressPolicy.CUSTOMER_SPECIFIC]
            > results.ingress_shares[IngressPolicy.NONE]
        )

    def test_egress_mix(self, results):
        assert (
            results.egress_shares[EgressPolicy.CUSTOMER_AS_SPECIFIC]
            >= results.egress_shares[EgressPolicy.NON_ROUTABLE_ONLY]
        )

    def test_filters_own(self, results):
        assert abs(results.filters_own_share - 0.65) < 0.15

    def test_large_sample_converges(self):
        rng = np.random.default_rng(7)
        big = tabulate(generate_survey_responses(rng, n=20_000))
        assert abs(big.suffered_attack_share - MARGINALS["suffered_spoofing_attack"]) < 0.02
        assert abs(big.no_validation_share - MARGINALS["no_source_validation"]) < 0.02

    def test_render(self, results):
        text = results.render()
        assert "84 responses" in text
        assert "ingress" in text and "egress" in text
