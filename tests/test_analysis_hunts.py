"""Tests for the WHOIS FP hunt, router strays, Spoofer cross-check,
amplification analyses, and NTP stats on the tiny world."""

import numpy as np
import pytest

from repro.analysis.falsepositives import hunt_false_positives
from repro.analysis.fig7_routerips import compute_router_stray_analysis
from repro.analysis.fig11_attacks import (
    compute_amplification_timeseries,
    compute_amplifier_ranking,
    compute_ntp_stats,
    ntp_trigger_flows,
)
from repro.analysis.spoofer_crosscheck import cross_check_spoofer
from repro.core import TrafficClass
from repro.datasets.ark import run_ark_campaign
from repro.datasets.spoofer import run_spoofer_campaign
from repro.datasets.whois import build_whois
from repro.ixp.flows import PROTO_UDP
from repro.util.timeconst import MEASUREMENT_SECONDS


@pytest.fixture(scope="module")
def approach():
    return "full+orgs"


class TestFalsePositiveHunt:
    def test_hunt_reduces_invalid(self, tiny_world, approach):
        whois = build_whois(tiny_world.topo)
        hunt = hunt_false_positives(tiny_world.result, approach, whois)
        assert hunt.invalid_packets_after <= hunt.invalid_packets_before
        assert 0.0 <= hunt.packet_reduction <= 1.0
        assert 0.0 <= hunt.byte_reduction <= 1.0

    def test_recovered_relationships_have_evidence(self, tiny_world, approach):
        whois = build_whois(tiny_world.topo)
        hunt = hunt_false_positives(tiny_world.result, approach, whois)
        for rel in hunt.recovered:
            assert rel.evidence in (
                "org", "policy", "inetnum", "tunnel", "policy-chain",
            )
            assert rel.packets > 0

    def test_relabelled_result_consistent(self, tiny_world, approach):
        whois = build_whois(tiny_world.topo)
        hunt = hunt_false_positives(tiny_world.result, approach, whois)
        after = hunt.relabelled.flows.packets[
            hunt.relabelled.class_mask(approach, TrafficClass.INVALID)
        ].sum()
        assert int(after) == hunt.invalid_packets_after

    def test_other_approaches_untouched(self, tiny_world, approach):
        whois = build_whois(tiny_world.topo)
        hunt = hunt_false_positives(tiny_world.result, approach, whois)
        assert (
            hunt.relabelled.label_vector("naive")
            == tiny_world.result.label_vector("naive")
        ).all()

    def test_top_members_parameter(self, tiny_world, approach):
        whois = build_whois(tiny_world.topo)
        narrow = hunt_false_positives(
            tiny_world.result, approach, whois, top_members=3
        )
        assert len(narrow.inspected_members) <= 3


class TestRouterStrays:
    def test_threshold_monotonicity(self, tiny_world, approach, rng):
        ark = run_ark_campaign(tiny_world.topo, rng)
        strict = compute_router_stray_analysis(
            tiny_world.result, approach, ark, threshold=0.2
        )
        loose = compute_router_stray_analysis(
            tiny_world.result, approach, ark, threshold=0.9
        )
        assert len(strict.excluded_members) >= len(loose.excluded_members)

    def test_per_member_counts_bounded(self, tiny_world, approach, rng):
        ark = run_ark_campaign(tiny_world.topo, rng)
        analysis = compute_router_stray_analysis(
            tiny_world.result, approach, ark
        )
        for total, router in analysis.per_member.values():
            assert 0 <= router <= total

    def test_protocol_mix_sums_to_one(self, tiny_world, approach, rng):
        ark = run_ark_campaign(tiny_world.topo, rng)
        analysis = compute_router_stray_analysis(
            tiny_world.result, approach, ark
        )
        if analysis.router_packet_share() > 0:
            assert sum(analysis.protocol_mix.values()) == pytest.approx(1.0)


class TestSpooferCrossCheck:
    def test_rates_bounded(self, tiny_world, approach, rng):
        spoofer = run_spoofer_campaign(
            rng, sorted(tiny_world.topo.ases), tiny_world.scenario.behaviors,
            test_fraction=0.5,
        )
        check = cross_check_spoofer(tiny_world.result, approach, spoofer)
        for value in (
            check.passive_rate(),
            check.spoofer_rate(),
            check.agreement_of_passive(),
            check.passive_coverage_of_spoofer(),
        ):
            assert 0.0 <= value <= 1.0

    def test_positives_within_overlap(self, tiny_world, approach, rng):
        spoofer = run_spoofer_campaign(
            rng, sorted(tiny_world.topo.ases), tiny_world.scenario.behaviors,
            test_fraction=0.5,
        )
        check = cross_check_spoofer(tiny_world.result, approach, spoofer)
        assert check.passive_positive <= check.overlapping_asns
        assert check.spoofer_positive <= check.overlapping_asns


class TestNTPAnalyses:
    def test_trigger_flows_are_udp_123(self, tiny_world, approach):
        triggers = ntp_trigger_flows(tiny_world.result, approach)
        if len(triggers):
            assert (triggers.proto == PROTO_UDP).all()
            assert (triggers.dst_port == 123).all()

    def test_amplifier_ranking_sorted(self, tiny_world, approach):
        ranking = compute_amplifier_ranking(tiny_world.result, approach)
        for profile in ranking.profiles:
            counts = profile.packets_per_amplifier
            assert (np.diff(counts) <= 0).all()

    def test_ntp_stats_shares_bounded(self, tiny_world, approach):
        stats = compute_ntp_stats(
            tiny_world.result, approach, tiny_world.scenario.census
        )
        assert 0.0 <= stats.top_member_share <= 1.0
        assert stats.top_member_share <= stats.top5_member_share <= 1.0

    def test_amplification_series_shapes(self, tiny_world, approach):
        series = compute_amplification_timeseries(
            tiny_world.result, approach, MEASUREMENT_SECONDS
        )
        assert series.packets_to_amplifiers.shape == series.hours.shape
        assert (series.packets_to_amplifiers >= 0).all()
