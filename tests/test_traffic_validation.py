"""Tests for the scenario validator (and, through it, the generator)."""

import numpy as np
import pytest

from repro.ixp.flows import TruthLabel
from repro.traffic.validation import Violation, validate_scenario


class TestValidatorOnHealthyWorlds:
    def test_tiny_world_is_clean(self, tiny_world):
        violations = validate_scenario(
            tiny_world.scenario, tiny_world.ixp, tiny_world.topo
        )
        assert violations == []

    def test_small_world_is_clean(self, small_world):
        violations = validate_scenario(
            small_world.scenario, small_world.ixp, small_world.topo
        )
        assert violations == []


class TestValidatorCatchesCorruption:
    def _copy_scenario(self, world):
        # Shallow copy with an independent flow table.
        import copy

        scenario = copy.copy(world.scenario)
        scenario.flows = world.scenario.flows.select(
            np.arange(len(world.scenario.flows))
        )
        return scenario

    def test_detects_stranger_member(self, tiny_world):
        scenario = self._copy_scenario(tiny_world)
        scenario.flows.member[0] = 999_999
        violations = validate_scenario(scenario, tiny_world.ixp, tiny_world.topo)
        assert any(v.rule == "ingress-membership" for v in violations)

    def test_detects_time_overflow(self, tiny_world):
        scenario = self._copy_scenario(tiny_world)
        scenario.flows.time[0] = scenario.config.window_seconds + 1
        violations = validate_scenario(scenario, tiny_world.ixp, tiny_world.topo)
        assert any(v.rule == "time-window" for v in violations)

    def test_detects_zero_packets(self, tiny_world):
        scenario = self._copy_scenario(tiny_world)
        scenario.flows.packets[0] = 0
        violations = validate_scenario(scenario, tiny_world.ixp, tiny_world.topo)
        assert any(v.rule == "counters" for v in violations)

    def test_detects_giant_packets(self, tiny_world):
        scenario = self._copy_scenario(tiny_world)
        scenario.flows.bytes[0] = scenario.flows.packets[0] * 9000
        violations = validate_scenario(scenario, tiny_world.ixp, tiny_world.topo)
        assert any(v.rule == "packet-sizes" for v in violations)

    def test_detects_bogon_legit_source(self, tiny_world):
        scenario = self._copy_scenario(tiny_world)
        legit_rows = np.flatnonzero(
            scenario.flows.truth == int(TruthLabel.LEGIT)
        )
        scenario.flows.src[legit_rows[0]] = (10 << 24) + 1  # 10.0.0.1
        violations = validate_scenario(scenario, tiny_world.ixp, tiny_world.topo)
        assert any(v.rule == "legit-sources" for v in violations)

    def test_detects_unplanned_trigger_victim(self, tiny_world):
        scenario = self._copy_scenario(tiny_world)
        trigger_rows = np.flatnonzero(
            scenario.flows.truth == int(TruthLabel.SPOOF_TRIGGER)
        )
        assert trigger_rows.size
        scenario.flows.src[trigger_rows[0]] = (61 << 24) + 12345
        violations = validate_scenario(scenario, tiny_world.ixp, tiny_world.topo)
        assert any(v.rule == "trigger-victims" for v in violations)

    def test_violation_str(self):
        violation = Violation("rule-x", "something broke")
        assert "rule-x" in str(violation)
